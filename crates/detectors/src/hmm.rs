//! The HMM-based detector (Warrender, Forrest & Pearlmutter 1999).
//!
//! The paper's reference [20] evaluated a hidden Markov model alongside
//! Stide and t-stide as data models for system-call streams, with
//! "roughly the same number of states as there are unique system
//! calls". This extension detector brings that fourth model into the
//! diversity study: a window's response is `1 − P(last element | the
//! window's preceding elements)` under the trained HMM's predictive
//! distribution — a *latent-state* analogue of the Markov detector's
//! explicit conditional table.

use std::collections::HashMap;

use detdiv_core::{SequenceAnomalyDetector, TrainedModel};
use detdiv_hmm::{baum_welch, Hmm, InitStrategy, TrainConfig};
use detdiv_sequence::Symbol;

/// Hyperparameters of the HMM-based detector.
#[derive(Debug, Clone, PartialEq)]
pub struct HmmConfig {
    /// Number of hidden states; `None` uses Warrender et al.'s
    /// heuristic of one state per observed symbol.
    pub states: Option<usize>,
    /// Baum–Welch iteration cap.
    pub max_iters: usize,
    /// Baum–Welch convergence tolerance on the total log-likelihood.
    pub tol: f64,
    /// Initialisation seed.
    pub seed: u64,
    /// The smallest response treated as maximal (the detection
    /// threshold caveat applies to this detector exactly as to the
    /// neural network).
    pub detection_floor: f64,
    /// Training cost is O(events × states²) per EM iteration, so the
    /// stream is subsampled to at most this many events (evenly spaced
    /// chunks). The paper's streams are overwhelmingly repetitive;
    /// subsampling does not change what the model can learn.
    pub max_training_events: usize,
}

impl Default for HmmConfig {
    fn default() -> Self {
        HmmConfig {
            states: None,
            max_iters: 30,
            tol: 1e-3,
            seed: 1999,
            detection_floor: 0.99,
            max_training_events: 20_000,
        }
    }
}

/// The HMM-based anomaly detector.
///
/// # Examples
///
/// ```
/// use detdiv_core::{SequenceAnomalyDetector, TrainedModel};
/// use detdiv_detectors::HmmDetector;
/// use detdiv_sequence::symbols;
///
/// let mut train = Vec::new();
/// for _ in 0..200 { train.extend(symbols(&[0, 1, 2, 3])); }
///
/// let mut det = HmmDetector::new(3);
/// det.train(&train);
/// let normal = det.scores(&symbols(&[0, 1, 2]))[0];
/// let foreign = det.scores(&symbols(&[0, 1, 0]))[0];
/// assert!(normal < 0.5);
/// assert!(foreign > 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct HmmDetector {
    window: usize,
    config: HmmConfig,
    model: Option<Hmm>,
}

impl HmmDetector {
    /// Creates an untrained detector with default hyperparameters.
    ///
    /// # Panics
    ///
    /// Panics if `window < 2`.
    pub fn new(window: usize) -> Self {
        Self::with_config(window, HmmConfig::default())
    }

    /// Creates an untrained detector with explicit hyperparameters.
    ///
    /// # Panics
    ///
    /// Panics if `window < 2`, `max_iters` or `max_training_events` is
    /// zero, or `detection_floor` is outside `(0, 1]`.
    pub fn with_config(window: usize, config: HmmConfig) -> Self {
        assert!(window >= 2, "the HMM detector needs a window of at least 2");
        assert!(
            config.max_iters > 0,
            "training needs at least one iteration"
        );
        assert!(config.max_training_events > 0, "training needs events");
        assert!(
            config.detection_floor > 0.0 && config.detection_floor <= 1.0,
            "detection floor must be in (0, 1]"
        );
        HmmDetector {
            window,
            config,
            model: None,
        }
    }

    /// The detector's hyperparameters.
    pub fn config(&self) -> &HmmConfig {
        &self.config
    }

    /// The trained model, if any.
    pub fn model(&self) -> Option<&Hmm> {
        self.model.as_ref()
    }

    /// Evenly spaced chunks totalling at most `budget` events.
    fn subsample(stream: &[Symbol], budget: usize) -> Vec<&[Symbol]> {
        if stream.len() <= budget {
            return vec![stream];
        }
        // Eight chunks spread across the stream.
        let chunks = 8usize;
        let chunk_len = budget / chunks;
        let stride = stream.len() / chunks;
        (0..chunks)
            .map(|i| {
                let start = i * stride;
                &stream[start..(start + chunk_len).min(stream.len())]
            })
            .collect()
    }
}

impl TrainedModel for HmmDetector {
    fn name(&self) -> &str {
        "hmm"
    }

    fn window(&self) -> usize {
        self.window
    }

    fn scores(&self, test: &[Symbol]) -> Vec<f64> {
        if test.len() < self.window {
            return Vec::new();
        }
        let Some(model) = &self.model else {
            return vec![1.0; test.len() - self.window + 1];
        };
        let mut cache: HashMap<&[Symbol], f64> = HashMap::new();
        test.windows(self.window)
            .map(|w| {
                if let Some(&s) = cache.get(w) {
                    return s;
                }
                let context = &w[..self.window - 1];
                let next = w[self.window - 1];
                let score = if next.index() >= model.symbols()
                    || context.iter().any(|s| s.index() >= model.symbols())
                {
                    // Foreign symbol: maximally anomalous by definition.
                    1.0
                } else {
                    1.0 - model
                        .predict_next(context, next)
                        .expect("symbols checked against the model's range")
                };
                cache.insert(w, score);
                score
            })
            .collect()
    }

    fn maximal_response_floor(&self) -> f64 {
        self.config.detection_floor
    }

    fn approx_bytes(&self) -> usize {
        // π (states) + A (states²) + B (states × symbols), f64 each.
        self.model.as_ref().map_or(0, |m| {
            let (n, k) = (m.states(), m.symbols());
            (n + n * n + n * k) * std::mem::size_of::<f64>()
        })
    }
}

impl SequenceAnomalyDetector for HmmDetector {
    fn train(&mut self, training: &[Symbol]) {
        if training.is_empty() {
            self.model = None;
            return;
        }
        let states = self.config.states.unwrap_or_else(|| {
            training
                .iter()
                .map(|s| s.index() + 1)
                .max()
                .expect("nonempty training")
        });
        let chunks = Self::subsample(training, self.config.max_training_events);
        // With the one-state-per-symbol heuristic, moment-matching
        // initialisation sidesteps EM's poor local optima on
        // near-deterministic streams; explicit smaller state counts fall
        // back to a seeded random start.
        let init = if states >= training.iter().map(|s| s.index() + 1).max().unwrap_or(0) {
            InitStrategy::FirstOrder
        } else {
            InitStrategy::Random
        };
        let train_config = TrainConfig {
            states,
            max_iters: self.config.max_iters,
            tol: self.config.tol,
            seed: self.config.seed,
            init,
        };
        self.model = baum_welch(&chunks, &train_config).ok().map(|(hmm, _)| hmm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_sequence::symbols;

    fn cycle_train(reps: usize) -> Vec<Symbol> {
        let mut v = Vec::new();
        for _ in 0..reps {
            v.extend(symbols(&[0, 1, 2, 3]));
        }
        v
    }

    fn trained(window: usize) -> HmmDetector {
        let mut det = HmmDetector::new(window);
        det.train(&cycle_train(150));
        det
    }

    #[test]
    fn cycle_continuations_score_low() {
        let det = trained(2);
        for (a, b) in [(0u32, 1u32), (1, 2), (2, 3), (3, 0)] {
            let s = det.scores(&symbols(&[a, b]))[0];
            assert!(s < 0.3, "({a},{b}) scored {s}");
        }
    }

    #[test]
    fn foreign_transitions_score_high() {
        let det = trained(2);
        for (a, b) in [(0u32, 2u32), (1, 3), (3, 2)] {
            let s = det.scores(&symbols(&[a, b]))[0];
            assert!(s > det.maximal_response_floor(), "({a},{b}) scored {s}");
        }
    }

    #[test]
    fn longer_windows_extend_the_context() {
        let det = trained(4);
        let normal = det.scores(&symbols(&[0, 1, 2, 3]))[0];
        let foreign = det.scores(&symbols(&[0, 1, 2, 0]))[0];
        assert!(normal < 0.3, "normal scored {normal}");
        assert!(foreign > 0.9, "foreign scored {foreign}");
    }

    #[test]
    fn foreign_symbol_is_maximal() {
        let det = trained(2);
        assert_eq!(det.scores(&symbols(&[0, 9])), vec![1.0]);
        assert_eq!(det.scores(&symbols(&[9, 0])), vec![1.0]);
    }

    #[test]
    fn untrained_detector_alarms_everywhere() {
        let det = HmmDetector::new(2);
        assert_eq!(det.scores(&symbols(&[0, 1, 2])), vec![1.0, 1.0]);
    }

    #[test]
    fn subsampling_caps_training_cost() {
        let long = cycle_train(100_000); // 400k elements
        let chunks = HmmDetector::subsample(&long, 16_000);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert!(total <= 16_000);
        assert_eq!(chunks.len(), 8);
        // Short streams pass through untouched.
        let short = cycle_train(10);
        assert_eq!(HmmDetector::subsample(&short, 16_000).len(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = trained(2);
        let b = trained(2);
        assert_eq!(
            a.scores(&symbols(&[0, 1, 2])),
            b.scores(&symbols(&[0, 1, 2]))
        );
    }

    #[test]
    fn trait_metadata() {
        let det = HmmDetector::new(5);
        assert_eq!(det.name(), "hmm");
        assert_eq!(det.window(), 5);
        assert!(det.model().is_none());
        assert!((det.maximal_response_floor() - 0.99).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "window of at least 2")]
    fn window_one_rejected() {
        let _ = HmmDetector::new(1);
    }

    #[test]
    #[should_panic(expected = "detection floor")]
    fn bad_floor_rejected() {
        let _ = HmmDetector::with_config(
            2,
            HmmConfig {
                detection_floor: 1.5,
                ..HmmConfig::default()
            },
        );
    }
}

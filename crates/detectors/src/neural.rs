//! The neural-network-based detector (Debar, Becker & Siboni 1992).
//!
//! "The Neural-network-based anomaly detector employs sequential ordering
//! of events in its detection approach. The similarity metric for this
//! detector is essentially embedded in the multilayer, feed-forward
//! learning mechanism. Although it does not use explicit probabilistic
//! concepts, the detector's learning algorithm is an approximation
//! function that can be described as mimicking the effects of employing
//! probabilistic concepts such as the conditional probabilities used by
//! the Markov-based detector." (§5.2.)
//!
//! Like the Markov detector, a window of size DW conditions on its first
//! DW − 1 elements (one-hot encoded) and scores the DW-th; the response
//! is `1 − softmax_probability(observed next)`.
//!
//! ## Reliability caveat (§7)
//!
//! "the performance of a multi-layer, feed-forward network relies on a
//! balance of parameter values, e.g., the learning constant, the number
//! of hidden nodes, and the momentum constant. Some combinations of these
//! values may result in weakened anomaly signals. In these cases, the
//! setting of another parameter — the detection threshold — becomes
//! critical." [`NeuralConfig`] exposes exactly those parameters, plus the
//! detection floor itself; the ablation experiment ABL3 sweeps them.

use std::collections::HashMap;

use detdiv_core::{SequenceAnomalyDetector, TrainedModel};
use detdiv_markov::ConditionalModel;
use detdiv_nn::{encode_context, Mlp, MlpConfig};
use detdiv_sequence::Symbol;

/// Hyperparameters of the neural-network-based detector.
#[derive(Debug, Clone, PartialEq)]
pub struct NeuralConfig {
    /// Hidden-layer width.
    pub hidden: usize,
    /// Training epochs over the weighted empirical dataset.
    pub epochs: usize,
    /// The learning constant.
    pub learning_rate: f64,
    /// The momentum constant.
    pub momentum: f64,
    /// Weight-initialisation seed.
    pub seed: u64,
    /// The smallest response treated as maximal. The paper notes the
    /// detection threshold becomes critical for this detector; 0.99
    /// tolerates the approximation error the network adds on top of the
    /// Markov detector's `1 − 0.005` floor.
    pub detection_floor: f64,
    /// Contexts observed fewer than this many times are dropped from the
    /// training set. On large, highly repetitive streams this removes
    /// one-off noise contexts and shrinks training cost by orders of
    /// magnitude without changing what the network can learn reliably.
    pub min_count: u64,
}

impl Default for NeuralConfig {
    fn default() -> Self {
        NeuralConfig {
            hidden: 16,
            epochs: 300,
            learning_rate: 0.4,
            momentum: 0.7,
            seed: 2005,
            detection_floor: 0.99,
            min_count: 1,
        }
    }
}

#[derive(Debug, Clone)]
struct TrainedNet {
    net: Mlp,
    alphabet_size: usize,
}

/// The neural-network-based anomaly detector.
///
/// # Examples
///
/// ```
/// use detdiv_core::{SequenceAnomalyDetector, TrainedModel};
/// use detdiv_detectors::NeuralDetector;
/// use detdiv_sequence::symbols;
///
/// let mut train = Vec::new();
/// for _ in 0..60 { train.extend(symbols(&[0, 1, 2, 3])); }
///
/// let mut det = NeuralDetector::new(2);
/// det.train(&train);
/// let normal = det.scores(&symbols(&[0, 1]))[0];
/// let foreign = det.scores(&symbols(&[1, 0]))[0]; // 1 -> 0 never occurs
/// assert!(normal < 0.5);
/// assert!(foreign > 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct NeuralDetector {
    window: usize,
    config: NeuralConfig,
    state: Option<TrainedNet>,
}

impl NeuralDetector {
    /// Creates an untrained detector with default hyperparameters.
    ///
    /// # Panics
    ///
    /// Panics if `window < 2` (one context element plus the predicted
    /// element are required).
    pub fn new(window: usize) -> Self {
        Self::with_config(window, NeuralConfig::default())
    }

    /// Creates an untrained detector with explicit hyperparameters.
    ///
    /// # Panics
    ///
    /// Panics if `window < 2`, `hidden` or `epochs` is zero, or
    /// `detection_floor` is not within `(0, 1]`.
    pub fn with_config(window: usize, config: NeuralConfig) -> Self {
        assert!(
            window >= 2,
            "the neural detector needs a window of at least 2"
        );
        assert!(config.hidden > 0, "hidden layer must be non-empty");
        assert!(config.epochs > 0, "training needs at least one epoch");
        assert!(
            config.detection_floor > 0.0 && config.detection_floor <= 1.0,
            "detection floor must be in (0, 1]"
        );
        NeuralDetector {
            window,
            config,
            state: None,
        }
    }

    /// The detector's hyperparameters.
    pub fn config(&self) -> &NeuralConfig {
        &self.config
    }

    /// Whether the detector has been trained.
    pub fn is_trained(&self) -> bool {
        self.state.is_some()
    }

    fn response_for(&self, state: &TrainedNet, window: &[Symbol]) -> f64 {
        let ctx_len = self.window - 1;
        let next = window[ctx_len];
        // A symbol outside the training alphabet is a foreign symbol —
        // maximally anomalous by definition.
        if window.iter().any(|s| s.index() >= state.alphabet_size) {
            return 1.0;
        }
        let ctx_ids: Vec<usize> = window[..ctx_len].iter().map(|s| s.index()).collect();
        let input = encode_context(&ctx_ids, state.alphabet_size);
        let out = state
            .net
            .forward(&input)
            .expect("input width fixed at training time");
        1.0 - out[next.index()]
    }
}

impl TrainedModel for NeuralDetector {
    fn name(&self) -> &str {
        "neural-network"
    }

    fn window(&self) -> usize {
        self.window
    }

    fn scores(&self, test: &[Symbol]) -> Vec<f64> {
        if test.len() < self.window {
            return Vec::new();
        }
        let Some(state) = &self.state else {
            return vec![1.0; test.len() - self.window + 1];
        };
        // Repetitive streams revisit the same window constantly; memoise
        // the forward passes.
        let mut cache: HashMap<&[Symbol], f64> = HashMap::new();
        test.windows(self.window)
            .map(|w| {
                if let Some(&s) = cache.get(w) {
                    s
                } else {
                    let s = self.response_for(state, w);
                    cache.insert(w, s);
                    s
                }
            })
            .collect()
    }

    fn maximal_response_floor(&self) -> f64 {
        self.config.detection_floor
    }

    fn approx_bytes(&self) -> usize {
        // Weight + momentum matrices: f64 per connection (incl. bias),
        // doubled for the momentum buffers.
        self.state.as_ref().map_or(0, |s| {
            let layers = s.net.config().layers();
            layers
                .windows(2)
                .map(|w| (w[0] + 1) * w[1] * std::mem::size_of::<f64>() * 2)
                .sum()
        })
    }
}

impl SequenceAnomalyDetector for NeuralDetector {
    fn train(&mut self, training: &[Symbol]) {
        let ctx_len = self.window - 1;
        let Ok(model) = ConditionalModel::estimate(training, ctx_len) else {
            self.state = None;
            return;
        };
        let alphabet_size = training.iter().map(|s| s.index() + 1).max().unwrap_or(0);
        if alphabet_size == 0 {
            self.state = None;
            return;
        }

        // Train on the weighted empirical distribution of (context, next)
        // pairs instead of the raw stream: equivalent in expectation and
        // far cheaper on repetitive data (DESIGN.md §3).
        let mut dataset: Vec<(Vec<f64>, usize, f64)> = Vec::new();
        for (ctx, next, count) in model.iter_counts() {
            if count < self.config.min_count {
                continue;
            }
            let ctx_ids: Vec<usize> = ctx.iter().map(|s| s.index()).collect();
            dataset.push((
                encode_context(&ctx_ids, alphabet_size),
                next.index(),
                count as f64,
            ));
        }
        if dataset.is_empty() {
            self.state = None;
            return;
        }
        // The conditional model iterates hash maps in arbitrary order;
        // sort so training is reproducible for a given seed.
        dataset.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("one-hot encodings are finite")
                .then(a.1.cmp(&b.1))
        });

        let layers = vec![ctx_len * alphabet_size, self.config.hidden, alphabet_size];
        let mut net = Mlp::new(
            MlpConfig::new(layers)
                .with_learning_rate(self.config.learning_rate)
                .with_momentum(self.config.momentum)
                .with_seed(self.config.seed),
        )
        .expect("validated configuration");
        for _ in 0..self.config.epochs {
            net.train_epoch(&dataset).expect("well-formed dataset");
        }
        self.state = Some(TrainedNet { net, alphabet_size });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_sequence::symbols;

    fn cycle_train(reps: usize) -> Vec<Symbol> {
        let mut v = Vec::new();
        for _ in 0..reps {
            v.extend(symbols(&[0, 1, 2, 3]));
        }
        v
    }

    fn trained(window: usize) -> NeuralDetector {
        let mut det = NeuralDetector::new(window);
        det.train(&cycle_train(80));
        det
    }

    #[test]
    fn cycle_continuations_score_low() {
        let det = trained(2);
        for (a, b) in [(0u32, 1u32), (1, 2), (2, 3), (3, 0)] {
            let s = det.scores(&symbols(&[a, b]))[0];
            assert!(s < 0.2, "({a},{b}) scored {s}");
        }
    }

    #[test]
    fn foreign_transitions_score_high() {
        let det = trained(2);
        for (a, b) in [(0u32, 2u32), (1, 3), (2, 0), (3, 2)] {
            let s = det.scores(&symbols(&[a, b]))[0];
            assert!(s > det.maximal_response_floor(), "({a},{b}) scored {s}");
        }
    }

    #[test]
    fn foreign_symbol_is_maximal() {
        let det = trained(2);
        // Symbol 9 is outside the training alphabet.
        assert_eq!(det.scores(&symbols(&[0, 9])), vec![1.0]);
        assert_eq!(det.scores(&symbols(&[9, 0])), vec![1.0]);
    }

    #[test]
    fn window_three_learns_longer_contexts() {
        let mut det = NeuralDetector::new(3);
        det.train(&cycle_train(80));
        let normal = det.scores(&symbols(&[0, 1, 2]))[0];
        let foreign = det.scores(&symbols(&[0, 1, 0]))[0];
        assert!(normal < 0.2, "normal scored {normal}");
        assert!(foreign > 0.9, "foreign scored {foreign}");
    }

    #[test]
    fn untrained_detector_alarms_everywhere() {
        let det = NeuralDetector::new(2);
        assert!(!det.is_trained());
        assert_eq!(det.scores(&symbols(&[0, 1, 2])), vec![1.0, 1.0]);
    }

    #[test]
    fn degenerate_training_is_handled() {
        let mut det = NeuralDetector::new(3);
        det.train(&symbols(&[0, 1])); // shorter than the window
        assert!(!det.is_trained());
    }

    #[test]
    fn min_count_filters_noise_contexts() {
        let config = NeuralConfig {
            min_count: 2,
            ..NeuralConfig::default()
        };
        let mut det = NeuralDetector::with_config(2, config);
        // (7,7) occurs once: filtered; cycle contexts remain.
        let mut train = cycle_train(50);
        train.extend(symbols(&[7, 7]));
        train.extend(cycle_train(50));
        det.train(&train);
        assert!(det.is_trained());
        // Cycle behaviour is still learned.
        assert!(det.scores(&symbols(&[0, 1]))[0] < 0.2);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = trained(2);
        let b = trained(2);
        assert_eq!(
            a.scores(&symbols(&[0, 1, 2])),
            b.scores(&symbols(&[0, 1, 2]))
        );
    }

    #[test]
    fn poor_hyperparameters_weaken_the_signal() {
        // The paper's §7 caveat, in miniature: a starved network (one
        // epoch) produces a weaker anomaly response than the default.
        let mut starved = NeuralDetector::with_config(
            2,
            NeuralConfig {
                epochs: 1,
                ..NeuralConfig::default()
            },
        );
        starved.train(&cycle_train(80));
        let weak = starved.scores(&symbols(&[0, 2]))[0];
        let strong = trained(2).scores(&symbols(&[0, 2]))[0];
        assert!(weak < strong, "starved {weak} vs trained {strong}");
    }

    #[test]
    fn trait_metadata() {
        let det = NeuralDetector::new(4);
        assert_eq!(det.name(), "neural-network");
        assert_eq!(det.window(), 4);
        assert!((det.maximal_response_floor() - 0.99).abs() < 1e-12);
        assert_eq!(det.min_window(), 2);
    }

    #[test]
    #[should_panic(expected = "window of at least 2")]
    fn window_one_rejected() {
        let _ = NeuralDetector::new(1);
    }

    #[test]
    #[should_panic(expected = "detection floor")]
    fn bad_floor_rejected() {
        let _ = NeuralDetector::with_config(
            2,
            NeuralConfig {
                detection_floor: 0.0,
                ..NeuralConfig::default()
            },
        );
    }
}

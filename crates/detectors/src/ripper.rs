//! The RIPPER-style rule-based detector (Warrender et al. 1999; Lee &
//! Stolfo's application of RIPPER to system-call data).
//!
//! Warrender et al.'s fourth data model learns classification rules that
//! predict the next system call from the preceding window; "anomalies"
//! are violations of high-confidence rules. This detector realises that
//! scheme on the shared trait: for each window, the rule set predicts
//! the final element from the preceding DW − 1 elements, and
//!
//! * if the prediction is **violated**, the response is the deciding
//!   rule's confidence (a confidently violated rule is a strong
//!   anomaly);
//! * if the prediction **holds**, the response is one minus that
//!   confidence (a confidently confirmed rule is strong normality).
//!
//! The default detection floor is 0.95: rule confidences are capped by
//! the generation noise (a cycle rule tops out near `1 − noise`), so the
//! probabilistic detectors' floors near 1 would be unreachable — the
//! same threshold-tuning consideration the paper raises for the neural
//! network.

use std::collections::HashMap;

use detdiv_core::{SequenceAnomalyDetector, TrainedModel};
use detdiv_rules::{learn_rules, Example, LearnConfig, RuleSet};
use detdiv_sequence::Symbol;

/// Hyperparameters of the rule-based detector.
#[derive(Debug, Clone, PartialEq)]
pub struct RipperConfig {
    /// Rule-induction parameters.
    pub learn: LearnConfig,
    /// (context, next) pairs observed fewer than this many times are
    /// dropped before learning — the same million-element-stream
    /// economy as the neural detector's `min_count`.
    pub min_count: u64,
    /// The smallest response treated as maximal.
    pub detection_floor: f64,
}

impl Default for RipperConfig {
    fn default() -> Self {
        RipperConfig {
            learn: LearnConfig::default(),
            min_count: 2,
            detection_floor: 0.95,
        }
    }
}

/// The RIPPER-style rule-based anomaly detector.
///
/// # Examples
///
/// ```
/// use detdiv_core::{SequenceAnomalyDetector, TrainedModel};
/// use detdiv_detectors::RipperDetector;
/// use detdiv_sequence::symbols;
///
/// let mut train = Vec::new();
/// for _ in 0..100 { train.extend(symbols(&[0, 1, 2, 3])); }
///
/// let mut det = RipperDetector::new(3);
/// det.train(&train);
/// let normal = det.scores(&symbols(&[0, 1, 2]))[0];
/// let violation = det.scores(&symbols(&[0, 1, 0]))[0];
/// assert!(normal < 0.1);
/// assert!(violation > 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct RipperDetector {
    window: usize,
    config: RipperConfig,
    rules: Option<RuleSet>,
}

impl RipperDetector {
    /// Creates an untrained detector with default hyperparameters.
    ///
    /// # Panics
    ///
    /// Panics if `window < 2`.
    pub fn new(window: usize) -> Self {
        Self::with_config(window, RipperConfig::default())
    }

    /// Creates an untrained detector with explicit hyperparameters.
    ///
    /// # Panics
    ///
    /// Panics if `window < 2` or `detection_floor` is outside `(0, 1]`.
    pub fn with_config(window: usize, config: RipperConfig) -> Self {
        assert!(
            window >= 2,
            "the rule detector needs a window of at least 2"
        );
        assert!(
            config.detection_floor > 0.0 && config.detection_floor <= 1.0,
            "detection floor must be in (0, 1]"
        );
        RipperDetector {
            window,
            config,
            rules: None,
        }
    }

    /// The detector's hyperparameters.
    pub fn config(&self) -> &RipperConfig {
        &self.config
    }

    /// The learned rule set, if trained.
    pub fn rules(&self) -> Option<&RuleSet> {
        self.rules.as_ref()
    }
}

impl TrainedModel for RipperDetector {
    fn name(&self) -> &str {
        "ripper"
    }

    fn window(&self) -> usize {
        self.window
    }

    fn scores(&self, test: &[Symbol]) -> Vec<f64> {
        if test.len() < self.window {
            return Vec::new();
        }
        let Some(rules) = &self.rules else {
            return vec![1.0; test.len() - self.window + 1];
        };
        let mut cache: HashMap<&[Symbol], f64> = HashMap::new();
        test.windows(self.window)
            .map(|w| {
                if let Some(&s) = cache.get(w) {
                    return s;
                }
                let context = &w[..self.window - 1];
                let next = w[self.window - 1];
                let p = rules.predict(context);
                let score = if p.class == next {
                    1.0 - p.confidence
                } else {
                    p.confidence
                };
                cache.insert(w, score);
                score
            })
            .collect()
    }

    fn maximal_response_floor(&self) -> f64 {
        self.config.detection_floor
    }

    fn approx_bytes(&self) -> usize {
        // Per rule: its condition vector plus fixed fields.
        self.rules.as_ref().map_or(0, |rs| {
            rs.rules()
                .iter()
                .map(|r| 64 + r.conditions.len() * 16)
                .sum()
        })
    }
}

impl SequenceAnomalyDetector for RipperDetector {
    fn train(&mut self, training: &[Symbol]) {
        let mut examples: Vec<Example> =
            detdiv_rules::examples_from_stream(training, self.window - 1)
                .into_iter()
                .filter(|e| e.weight >= self.config.min_count as f64)
                .collect();
        if examples.is_empty() {
            // Degenerate filter: fall back to the unfiltered set so tiny
            // fixtures still train.
            examples = detdiv_rules::examples_from_stream(training, self.window - 1);
        }
        self.rules = learn_rules(&examples, &self.config.learn).ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_sequence::symbols;

    fn cycle_train(reps: usize) -> Vec<Symbol> {
        let mut v = Vec::new();
        for _ in 0..reps {
            v.extend(symbols(&[0, 1, 2, 3]));
        }
        v
    }

    fn trained(window: usize) -> RipperDetector {
        let mut det = RipperDetector::new(window);
        det.train(&cycle_train(120));
        det
    }

    #[test]
    fn confirmed_rules_score_low() {
        let det = trained(2);
        for (a, b) in [(0u32, 1u32), (1, 2), (2, 3), (3, 0)] {
            let s = det.scores(&symbols(&[a, b]))[0];
            assert!(s < 0.1, "({a},{b}) scored {s}");
        }
    }

    #[test]
    fn violated_rules_score_high() {
        let det = trained(2);
        for (a, b) in [(0u32, 2u32), (1, 3), (3, 2)] {
            let s = det.scores(&symbols(&[a, b]))[0];
            assert!(s > det.maximal_response_floor(), "({a},{b}) scored {s}");
        }
    }

    #[test]
    fn wider_windows_learn_positional_rules() {
        let det = trained(4);
        let normal = det.scores(&symbols(&[0, 1, 2, 3]))[0];
        let violation = det.scores(&symbols(&[0, 1, 2, 1]))[0];
        assert!(normal < 0.1, "normal scored {normal}");
        assert!(violation > 0.9, "violation scored {violation}");
    }

    #[test]
    fn untrained_detector_alarms_everywhere() {
        let det = RipperDetector::new(2);
        assert_eq!(det.scores(&symbols(&[0, 1, 2])), vec![1.0, 1.0]);
        assert!(det.rules().is_none());
    }

    #[test]
    fn tiny_fixtures_fall_back_to_unfiltered_examples() {
        let mut det = RipperDetector::new(2);
        // Every pair occurs once: the min_count filter would empty the
        // set; the fallback keeps training possible.
        det.train(&symbols(&[0, 1, 2, 3, 4]));
        assert!(det.rules().is_some());
    }

    #[test]
    fn deterministic_training() {
        let a = trained(3);
        let b = trained(3);
        assert_eq!(a.rules(), b.rules());
    }

    #[test]
    fn trait_metadata() {
        let det = RipperDetector::new(5);
        assert_eq!(det.name(), "ripper");
        assert_eq!(det.window(), 5);
        assert!((det.maximal_response_floor() - 0.95).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "window of at least 2")]
    fn window_one_rejected() {
        let _ = RipperDetector::new(1);
    }

    #[test]
    #[should_panic(expected = "detection floor")]
    fn bad_floor_rejected() {
        let _ = RipperDetector::with_config(
            2,
            RipperConfig {
                detection_floor: 0.0,
                ..RipperConfig::default()
            },
        );
    }
}

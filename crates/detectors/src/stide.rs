//! Stide — sequence time-delay embedding (Forrest et al. 1996; Warrender
//! et al. 1999).
//!
//! "Stide is an anomaly detector that is completely dependent upon the
//! sequential ordering of categorical elements in the data stream. The
//! detector establishes whether every fixed-length sequence of size DW
//! from the test data exists in the normal database of same-sized
//! sequences. The value 0 is assigned to indicate that a matching normal
//! sequence was found, and the value 1 is assigned to indicate otherwise.
//! No direct probabilistic concepts ... are employed." (§5.2)

use detdiv_core::{SequenceAnomalyDetector, TrainedModel};
use detdiv_sequence::{NgramSet, Symbol};

/// The Stide detector: binary foreign-sequence matching.
///
/// # Examples
///
/// ```
/// use detdiv_core::{SequenceAnomalyDetector, TrainedModel};
/// use detdiv_detectors::Stide;
/// use detdiv_sequence::symbols;
///
/// let mut stide = Stide::new(2);
/// stide.train(&symbols(&[1, 2, 3, 1, 2, 3]));
/// // (3,1) is known; (2,1) is foreign.
/// assert_eq!(stide.scores(&symbols(&[3, 1, 2, 1])), vec![0.0, 0.0, 1.0]);
/// ```
#[derive(Debug, Clone)]
pub struct Stide {
    window: usize,
    db: NgramSet,
}

impl Stide {
    /// Creates an untrained Stide with detector window `window`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "detector window must be positive");
        Stide {
            window,
            db: NgramSet::new(window),
        }
    }

    /// The normal database (exposed for inspection and for composing
    /// higher-level analyses).
    pub fn database(&self) -> &NgramSet {
        &self.db
    }
}

impl TrainedModel for Stide {
    fn name(&self) -> &str {
        "stide"
    }

    fn window(&self) -> usize {
        self.window
    }

    fn scores(&self, test: &[Symbol]) -> Vec<f64> {
        if test.len() < self.window {
            return Vec::new();
        }
        test.windows(self.window)
            .map(|w| if self.db.contains(w) { 0.0 } else { 1.0 })
            .collect()
    }

    fn score_one(&self, window: &[Symbol]) -> f64 {
        // Allocation-free streaming form of the batch closure above.
        if window.len() != self.window {
            return 1.0;
        }
        if self.db.contains(window) {
            0.0
        } else {
            1.0
        }
    }

    fn approx_bytes(&self) -> usize {
        // One boxed n-gram of `window` symbols per database entry, plus
        // hash-set bookkeeping.
        self.db.len() * (self.window * std::mem::size_of::<Symbol>() + 48)
    }
}

impl SequenceAnomalyDetector for Stide {
    fn train(&mut self, training: &[Symbol]) {
        self.db = NgramSet::from_stream(training, self.window);
    }
}

/// Stide with the *locality frame count* (LFC) post-processor of
/// Warrender et al., mentioned and deliberately set aside by the paper's
/// §5.5 ("Processes occurring after the application of the similarity
/// measure were ignored, e.g., Stide's locality frame count").
///
/// The LFC replaces each position's binary mismatch with the fraction of
/// mismatches among the most recent `frame` windows, suppressing isolated
/// mismatches while amplifying temporally clustered ones. Included here
/// as the ablation the paper implies: with `frame == 1` it degenerates to
/// plain Stide.
///
/// # Examples
///
/// ```
/// use detdiv_core::{SequenceAnomalyDetector, TrainedModel};
/// use detdiv_detectors::StideLfc;
/// use detdiv_sequence::symbols;
///
/// let mut det = StideLfc::new(2, 2);
/// det.train(&symbols(&[1, 2, 3, 1, 2, 3]));
/// // Mismatch stream for (3,1,2,1): 0, 0, 1 -> LFC(2): 0, 0, 0.5
/// assert_eq!(det.scores(&symbols(&[3, 1, 2, 1])), vec![0.0, 0.0, 0.5]);
/// ```
#[derive(Debug, Clone)]
pub struct StideLfc {
    stide: Stide,
    frame: usize,
}

impl StideLfc {
    /// Creates an untrained LFC-Stide with window `window` and locality
    /// frame `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `frame` is zero.
    pub fn new(window: usize, frame: usize) -> Self {
        assert!(frame > 0, "locality frame must be positive");
        StideLfc {
            stide: Stide::new(window),
            frame,
        }
    }

    /// The locality frame length.
    pub fn frame(&self) -> usize {
        self.frame
    }
}

impl TrainedModel for StideLfc {
    fn name(&self) -> &str {
        "stide-lfc"
    }

    fn window(&self) -> usize {
        self.stide.window
    }

    fn approx_bytes(&self) -> usize {
        self.stide.approx_bytes()
    }

    fn scores(&self, test: &[Symbol]) -> Vec<f64> {
        let raw = self.stide.scores(test);
        let mut out = Vec::with_capacity(raw.len());
        let mut in_frame = 0usize;
        for i in 0..raw.len() {
            if raw[i] > 0.0 {
                in_frame += 1;
            }
            if i >= self.frame && raw[i - self.frame] > 0.0 {
                in_frame -= 1;
            }
            out.push(in_frame as f64 / self.frame as f64);
        }
        out
    }
}

impl SequenceAnomalyDetector for StideLfc {
    fn train(&mut self, training: &[Symbol]) {
        self.stide.train(training);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_sequence::symbols;

    fn trained_stide(window: usize) -> Stide {
        let mut s = Stide::new(window);
        let mut train = Vec::new();
        for _ in 0..50 {
            train.extend(symbols(&[1, 2, 3, 4]));
        }
        s.train(&train);
        s
    }

    #[test]
    fn known_windows_score_zero() {
        let s = trained_stide(3);
        let scores = s.scores(&symbols(&[1, 2, 3, 4, 1, 2]));
        assert!(scores.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn foreign_windows_score_one() {
        let s = trained_stide(3);
        // (3,2,1) is foreign to the 1234 cycle.
        let scores = s.scores(&symbols(&[3, 2, 1]));
        assert_eq!(scores, vec![1.0]);
    }

    #[test]
    fn detects_foreign_sequence_only_when_window_covers_it() {
        // The paper's Stide weakness: a minimal foreign sequence of
        // length AS is invisible when DW < AS if all shorter windows are
        // known. Build training containing all bigrams/trigrams of the
        // anomaly but not the full 4-gram.
        let mut train = Vec::new();
        for _ in 0..30 {
            train.extend(symbols(&[1, 2, 3, 4]));
        }
        // Plant the proper subsequences of anomaly (2,4,1,3):
        // prefix (2,4,1) and suffix (4,1,3).
        train.extend(symbols(&[1, 2, 4, 1, 2, 3, 4]));
        train.extend(symbols(&[1, 2, 3, 4, 1, 3, 4]));
        for _ in 0..5 {
            train.extend(symbols(&[1, 2, 3, 4]));
        }

        let anomaly = symbols(&[2, 4, 1, 3]);

        let mut s3 = Stide::new(3);
        s3.train(&train);
        // Every 3-window of the anomaly exists in training: blind.
        assert!(s3.scores(&anomaly).iter().all(|&x| x == 0.0));

        let mut s4 = Stide::new(4);
        s4.train(&train);
        assert_eq!(s4.scores(&anomaly), vec![1.0]);
    }

    #[test]
    fn short_test_stream_yields_no_scores() {
        let s = trained_stide(4);
        assert!(s.scores(&symbols(&[1, 2])).is_empty());
    }

    #[test]
    fn retraining_replaces_database() {
        let mut s = Stide::new(2);
        s.train(&symbols(&[1, 2, 1, 2]));
        assert_eq!(s.scores(&symbols(&[3, 4])), vec![1.0]);
        s.train(&symbols(&[3, 4, 3, 4]));
        assert_eq!(s.scores(&symbols(&[3, 4])), vec![0.0]);
        assert_eq!(s.scores(&symbols(&[1, 2])), vec![1.0]);
    }

    #[test]
    fn trait_metadata() {
        let s = Stide::new(5);
        assert_eq!(s.name(), "stide");
        assert_eq!(s.window(), 5);
        assert_eq!(s.maximal_response_floor(), 1.0);
        assert_eq!(s.min_window(), 2);
        assert_eq!(s.database().ngram_len(), 5);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = Stide::new(0);
    }

    #[test]
    fn lfc_smooths_isolated_mismatches() {
        let mut det = StideLfc::new(2, 4);
        det.train(&symbols(&[1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4]));
        // Single foreign bigram (2,1) inside an otherwise normal stream.
        let scores = det.scores(&symbols(&[1, 2, 1, 2, 3, 4, 1, 2]));
        // Mismatch raw: (1,2)=0 (2,1)=1 (1,2)=0 (2,3)=0 (3,4)=0 (4,1)=0 (1,2)=0
        assert_eq!(scores[1], 0.25);
        // The mismatch washes out of the frame after 4 steps.
        assert_eq!(scores[5], 0.0);
        // Never reaches the maximal response: LFC suppressed the alarm.
        assert!(scores.iter().all(|&x| x < 1.0));
    }

    #[test]
    fn lfc_amplifies_clustered_mismatches() {
        let mut det = StideLfc::new(2, 2);
        det.train(&symbols(&[1, 2, 3, 4, 1, 2, 3, 4]));
        // Two adjacent foreign bigrams: (2,1) and (1,4)? (4,1) known...
        // stream (1,2,1,4): bigrams (1,2)=0 (2,1)=1 (1,4)=1
        let scores = det.scores(&symbols(&[1, 2, 1, 4]));
        assert_eq!(scores, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn lfc_frame_one_equals_stide() {
        let mut lfc = StideLfc::new(2, 1);
        let mut stide = Stide::new(2);
        let train = symbols(&[1, 2, 3, 1, 2, 3]);
        lfc.train(&train);
        stide.train(&train);
        let test = symbols(&[1, 2, 1, 3, 2, 2]);
        assert_eq!(lfc.scores(&test), stide.scores(&test));
    }

    #[test]
    #[should_panic(expected = "locality frame must be positive")]
    fn lfc_zero_frame_rejected() {
        let _ = StideLfc::new(2, 0);
    }
}

//! The Lane & Brodley detector (Lane & Brodley 1997).
//!
//! "For two fixed-length sequences of the same size, each element in one
//! sequence is compared to its counterpart at the same position in the
//! other sequence. Elements that do not match are given the value 0, and
//! matching elements are given a score that incorporates a weight value.
//! This weight value increases as more adjacent elements are found to
//! match. The similarity metric produces a value between 0 and
//! DW(DW+1)/2, where 0 denotes the greatest degree of dissimilarity
//! (anomaly) ... and DW(DW+1)/2 ... identical sequences." (§5.2.)
//!
//! A test window's anomaly response is computed against the *most
//! similar* normal sequence: `1 − max_n Sim(test, n) / Sim_max`. The
//! paper's Figure 7 illustrates the bias this metric carries: a foreign
//! sequence differing from a normal one only in its final element scores
//! `DW(DW−1)/2` (10 of 15 for DW = 5) — "close to normal" — which is why
//! the detector is blind across the entire MFS space (§7, Figure 3).

use detdiv_core::{SequenceAnomalyDetector, TrainedModel};
use detdiv_sequence::{NgramSet, Symbol};

/// Pairwise adjacency-weighted similarity between two same-length
/// sequences.
///
/// Matching elements contribute a weight equal to the length of the run
/// of consecutive matches ending at that position; mismatches contribute
/// zero and reset the run.
///
/// # Panics
///
/// Panics if the sequences differ in length.
///
/// # Examples
///
/// The paper's Figure 7 (`cd <1> ls laf tar` encoded as symbols):
///
/// ```
/// use detdiv_detectors::lane_brodley_similarity;
/// use detdiv_sequence::symbols;
///
/// let normal = symbols(&[0, 1, 2, 3, 4]); // cd <1> ls laf tar
/// assert_eq!(lane_brodley_similarity(&normal, &normal), 15);
///
/// let foreign = symbols(&[0, 1, 2, 3, 0]); // cd <1> ls laf cd
/// assert_eq!(lane_brodley_similarity(&normal, &foreign), 10);
/// ```
pub fn lane_brodley_similarity(a: &[Symbol], b: &[Symbol]) -> u64 {
    assert_eq!(
        a.len(),
        b.len(),
        "similarity requires same-length sequences"
    );
    let mut run = 0u64;
    let mut total = 0u64;
    for (x, y) in a.iter().zip(b) {
        if x == y {
            run += 1;
            total += run;
        } else {
            run = 0;
        }
    }
    total
}

/// The maximal similarity `DW(DW+1)/2` for window length `window`.
#[inline]
pub const fn lane_brodley_sim_max(window: usize) -> u64 {
    (window as u64 * (window as u64 + 1)) / 2
}

/// The Lane & Brodley detector.
///
/// # Examples
///
/// ```
/// use detdiv_core::{SequenceAnomalyDetector, TrainedModel};
/// use detdiv_detectors::LaneBrodley;
/// use detdiv_sequence::symbols;
///
/// let mut det = LaneBrodley::new(5);
/// det.train(&symbols(&[0, 1, 2, 3, 4, 0, 1, 2, 3, 4]));
/// // Final-element mismatch: similarity 10/15, response 1/3.
/// let scores = det.scores(&symbols(&[0, 1, 2, 3, 0]));
/// assert!((scores[0] - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct LaneBrodley {
    window: usize,
    normals: Vec<Box<[Symbol]>>,
}

impl LaneBrodley {
    /// Creates an untrained Lane & Brodley detector with window
    /// `window`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "detector window must be positive");
        LaneBrodley {
            window,
            normals: Vec::new(),
        }
    }

    /// Number of distinct normal sequences in the model.
    pub fn normal_count(&self) -> usize {
        self.normals.len()
    }

    /// Anomaly response of a single window against the trained model.
    ///
    /// # Panics
    ///
    /// Panics if `window.len()` differs from the detector window.
    pub fn response(&self, window: &[Symbol]) -> f64 {
        assert_eq!(window.len(), self.window, "window length mismatch");
        if self.normals.is_empty() {
            return 1.0;
        }
        let sim_max = lane_brodley_sim_max(self.window);
        let mut best = 0;
        for n in &self.normals {
            best = best.max(lane_brodley_similarity(window, n));
            if best == sim_max {
                // An exact normal match; no other normal can score higher.
                break;
            }
        }
        1.0 - best as f64 / sim_max as f64
    }
}

impl TrainedModel for LaneBrodley {
    fn name(&self) -> &str {
        "lane-brodley"
    }

    fn window(&self) -> usize {
        self.window
    }

    fn approx_bytes(&self) -> usize {
        // One boxed normal sequence of `window` symbols per entry.
        self.normals.len()
            * (self.window * std::mem::size_of::<Symbol>() + std::mem::size_of::<Box<[Symbol]>>())
    }

    fn scores(&self, test: &[Symbol]) -> Vec<f64> {
        if test.len() < self.window {
            return Vec::new();
        }
        // Test streams are highly repetitive; memoise per distinct
        // window so the max-similarity scan runs once per pattern.
        let mut cache: std::collections::HashMap<&[Symbol], f64> = std::collections::HashMap::new();
        test.windows(self.window)
            .map(|w| {
                if let Some(&s) = cache.get(w) {
                    s
                } else {
                    let s = self.response(w);
                    cache.insert(w, s);
                    s
                }
            })
            .collect()
    }

    fn score_one(&self, window: &[Symbol]) -> f64 {
        // Allocation-free streaming form: the batch path memoises
        // [`LaneBrodley::response`] per distinct window, which never
        // changes the value — one uncached call is bit-identical.
        if window.len() != self.window {
            return 1.0;
        }
        self.response(window)
    }
}

impl SequenceAnomalyDetector for LaneBrodley {
    fn train(&mut self, training: &[Symbol]) {
        // Deduplicate: similarity against duplicate normals is wasted
        // work, and the max over a set equals the max over its distinct
        // members.
        let set = NgramSet::from_stream(training, self.window);
        self.normals = set.iter().map(|g| g.to_vec().into_boxed_slice()).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_sequence::symbols;

    #[test]
    fn similarity_of_identical_sequences_is_maximal() {
        for dw in 1..=10 {
            let s: Vec<Symbol> = (0..dw as u32).map(Symbol::new).collect();
            assert_eq!(
                lane_brodley_similarity(&s, &s),
                lane_brodley_sim_max(dw),
                "dw={dw}"
            );
        }
    }

    #[test]
    fn figure_7_values() {
        // Identical size-5 sequences: 1+2+3+4+5 = 15.
        let normal = symbols(&[0, 1, 2, 3, 4]);
        assert_eq!(lane_brodley_similarity(&normal, &normal), 15);
        // Final element differs: 1+2+3+4+0 = 10.
        let foreign = symbols(&[0, 1, 2, 3, 0]);
        assert_eq!(lane_brodley_similarity(&normal, &foreign), 10);
        // First element differs: 0+1+2+3+4 = 10 as well (the bias is
        // symmetric at the edges).
        let foreign_front = symbols(&[4, 1, 2, 3, 4]);
        assert_eq!(lane_brodley_similarity(&normal, &foreign_front), 10);
    }

    #[test]
    fn middle_mismatch_is_penalised_more() {
        let normal = symbols(&[0, 1, 2, 3, 4]);
        // Mismatch at centre: runs 1+2 then 1+2 = 6 < 10.
        let mid = symbols(&[0, 1, 9, 3, 4]);
        assert_eq!(lane_brodley_similarity(&normal, &mid), 6);
    }

    #[test]
    fn total_mismatch_is_zero() {
        let a = symbols(&[0, 1, 2]);
        let b = symbols(&[3, 4, 5]);
        assert_eq!(lane_brodley_similarity(&a, &b), 0);
    }

    #[test]
    fn similarity_is_symmetric() {
        let a = symbols(&[0, 1, 2, 1, 0]);
        let b = symbols(&[0, 2, 2, 1, 1]);
        assert_eq!(
            lane_brodley_similarity(&a, &b),
            lane_brodley_similarity(&b, &a)
        );
    }

    #[test]
    #[should_panic(expected = "same-length")]
    fn similarity_rejects_length_mismatch() {
        let _ = lane_brodley_similarity(&symbols(&[1]), &symbols(&[1, 2]));
    }

    #[test]
    fn response_uses_most_similar_normal() {
        let mut det = LaneBrodley::new(3);
        det.train(&symbols(&[0, 1, 2, 0, 1, 2])); // normals: 012, 120, 201
                                                  // (0,1,9): best match 012 with sim 1+2+0 = 3 of 6 -> response 0.5.
        assert!((det.response(&symbols(&[0, 1, 9])) - 0.5).abs() < 1e-12);
        // Identical to a normal: response 0.
        assert_eq!(det.response(&symbols(&[1, 2, 0])), 0.0);
    }

    #[test]
    fn untrained_detector_responds_maximally() {
        let det = LaneBrodley::new(2);
        assert_eq!(det.response(&symbols(&[1, 2])), 1.0);
    }

    #[test]
    fn blind_to_minimal_foreign_sequences() {
        // The paper's central L&B finding: an MFS differing from normal
        // sequences in few positions never draws a maximal response,
        // even when DW = AS.
        let mut train = Vec::new();
        for _ in 0..50 {
            train.extend(symbols(&[1, 2, 3, 4]));
        }
        train.extend(symbols(&[2, 4])); // rare material
        for _ in 0..50 {
            train.extend(symbols(&[1, 2, 3, 4]));
        }
        let mut det = LaneBrodley::new(3);
        det.train(&train);
        // (1,2,4) is minimal foreign; its best normal match (1,2,3)
        // scores 1+2+0 = 3 of 6.
        let r = det.response(&symbols(&[1, 2, 4]));
        assert!(r < 1.0, "L&B should not respond maximally, got {r}");
        assert!(r > 0.0);
    }

    #[test]
    fn scores_vector_shape() {
        let mut det = LaneBrodley::new(2);
        det.train(&symbols(&[1, 2, 1, 2]));
        assert_eq!(det.scores(&symbols(&[1, 2, 1])).len(), 2);
        assert!(det.scores(&symbols(&[1])).is_empty());
    }

    #[test]
    fn normals_are_deduplicated() {
        let mut det = LaneBrodley::new(2);
        det.train(&symbols(&[1, 2, 1, 2, 1, 2, 1, 2]));
        assert_eq!(det.normal_count(), 2); // (1,2) and (2,1)
    }

    #[test]
    fn trait_metadata() {
        let det = LaneBrodley::new(4);
        assert_eq!(det.name(), "lane-brodley");
        assert_eq!(det.window(), 4);
        assert_eq!(det.maximal_response_floor(), 1.0);
    }
}

//! Property tests for the detector implementations.

use detdiv_core::{SequenceAnomalyDetector, TrainedModel};
use detdiv_detectors::{
    lane_brodley_sim_max, lane_brodley_similarity, LaneBrodley, MarkovDetector, Stide, StideLfc,
    TStide,
};
use detdiv_sequence::{Symbol, DEFAULT_RARE_THRESHOLD};
use proptest::prelude::*;

fn stream(max_sym: u32, min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<Symbol>> {
    prop::collection::vec((0..max_sym).prop_map(Symbol::new), min_len..=max_len)
}

proptest! {
    /// Stide is exact: score 0 on every window of its own training data,
    /// for any stream and window.
    #[test]
    fn stide_accepts_its_training_data(s in stream(4, 6, 120), dw in 2usize..6) {
        prop_assume!(s.len() >= dw);
        let mut det = Stide::new(dw);
        det.train(&s);
        let scores = det.scores(&s);
        prop_assert!(scores.iter().all(|&x| x == 0.0));
    }

    /// L&B similarity is symmetric, bounded by Sim_max, and attains the
    /// bound only for identical sequences.
    #[test]
    fn lane_brodley_similarity_properties(
        a in stream(4, 5, 5),
        b in stream(4, 5, 5),
    ) {
        let sab = lane_brodley_similarity(&a, &b);
        let sba = lane_brodley_similarity(&b, &a);
        prop_assert_eq!(sab, sba);
        prop_assert!(sab <= lane_brodley_sim_max(5));
        prop_assert_eq!(sab == lane_brodley_sim_max(5), a == b);
        prop_assert_eq!(lane_brodley_similarity(&a, &a), lane_brodley_sim_max(5));
    }

    /// Every detector family produces responses in [0, 1] with the
    /// correct count, on arbitrary train/test pairs.
    #[test]
    fn responses_are_bounded_everywhere(
        train in stream(4, 10, 150),
        test in stream(5, 1, 60), // may contain a symbol unseen in training
        dw in 2usize..5,
    ) {
        prop_assume!(train.len() > dw);
        let mut detectors: Vec<Box<dyn SequenceAnomalyDetector>> = vec![
            Box::new(Stide::new(dw)),
            Box::new(StideLfc::new(dw, 4)),
            Box::new(TStide::new(dw)),
            Box::new(MarkovDetector::new(dw)),
            Box::new(LaneBrodley::new(dw)),
        ];
        for det in detectors.iter_mut() {
            det.train(&train);
            let scores = det.scores(&test);
            let expected = if test.len() < dw { 0 } else { test.len() - dw + 1 };
            prop_assert_eq!(scores.len(), expected, "{}", det.name());
            for &x in &scores {
                prop_assert!((0.0..=1.0).contains(&x), "{}: {}", det.name(), x);
            }
        }
    }

    /// t-stide dominates Stide: its response is at least Stide's
    /// alarm-equivalent everywhere (foreign windows are maximal for
    /// both; known windows score below 1 for both).
    #[test]
    fn tstide_dominates_stide(
        train in stream(3, 10, 150),
        test in stream(3, 5, 60),
        dw in 2usize..4,
    ) {
        prop_assume!(train.len() >= dw);
        let mut stide = Stide::new(dw);
        let mut tstide = TStide::new(dw);
        stide.train(&train);
        tstide.train(&train);
        let s = stide.scores(&test);
        let t = tstide.scores(&test);
        for i in 0..s.len() {
            if s[i] == 1.0 {
                prop_assert_eq!(t[i], 1.0, "position {}", i);
            } else {
                prop_assert!(t[i] < 1.0, "position {}", i);
            }
        }
    }

    /// The Markov detector's response on training windows never reaches
    /// its maximal floor... unless the transition is genuinely rare in
    /// the training data itself. Formally: response >= floor implies the
    /// window's transition has empirical probability below the rare
    /// threshold.
    #[test]
    fn markov_maximal_implies_rare(
        train in stream(3, 20, 200),
        dw in 2usize..4,
    ) {
        prop_assume!(train.len() > dw);
        let mut det = MarkovDetector::new(dw);
        det.train(&train);
        let scores = det.scores(&train);
        for (i, &score) in scores.iter().enumerate() {
            if score >= det.maximal_response_floor() {
                // 1 - P >= 1 - r  =>  P <= r.
                let p = 1.0 - score;
                prop_assert!(p <= DEFAULT_RARE_THRESHOLD + 1e-12, "window {} has p {}", i, p);
            }
        }
    }

    /// LFC scores are running averages of Stide mismatches: bounded by
    /// the frame's content and equal to plain Stide for frame 1.
    #[test]
    fn lfc_is_a_running_average(
        train in stream(3, 10, 120),
        test in stream(3, 5, 60),
        dw in 2usize..4,
        frame in 1usize..6,
    ) {
        prop_assume!(train.len() >= dw);
        let mut plain = Stide::new(dw);
        let mut lfc = StideLfc::new(dw, frame);
        plain.train(&train);
        lfc.train(&train);
        let raw = plain.scores(&test);
        let smooth = lfc.scores(&test);
        for i in 0..raw.len() {
            let start = i.saturating_sub(frame - 1);
            let expected: f64 =
                raw[start..=i].iter().sum::<f64>() / frame as f64;
            prop_assert!((smooth[i] - expected).abs() < 1e-12, "position {}", i);
        }
    }
}

//! `detdiv-resil`: supervised fault-tolerant execution for the detdiv
//! workspace, free of any dependency (std only).
//!
//! The paper's evaluation methodology stands or falls with the
//! trustworthiness of every (AS × DW) cell in its coverage grids: a
//! sweep that dies at cell 4,000 of 4,400 throws everything away, and a
//! torn `paper_report.json` silently corrupts the record. This crate
//! makes failure handling a first-class, *tested* subsystem:
//!
//! 1. **Deterministic fault injection** ([`FaultPlan`], [`point`],
//!    [`io_point`]) — a seeded plan armed via the
//!    `DETDIV_FAULT=seed:rate:kinds[:stall_ms]` environment variable
//!    (or programmatically) injects panics, synthetic I/O errors, and
//!    artificial stalls at named sites. Every injection decision is a
//!    pure function of `(seed, site, hit-index)`, so chaos runs are
//!    exactly replayable: the same seed trips the same hits of the same
//!    sites in a serial run, and the same *multiset* of per-site
//!    decisions at any thread count. Disarmed, a site costs **one
//!    relaxed atomic load**.
//! 2. **Supervision** ([`supervised`], [`RetryPolicy`],
//!    [`CellOutcome`]) — wraps a unit of work in `catch_unwind` with
//!    bounded retry, exponential backoff, and a wall-clock watchdog
//!    that flags (not kills — this crate spawns no threads) attempts
//!    exceeding their budget. A poisoned cell degrades to a marked
//!    [`CellOutcome::Failed`] instead of killing the sweep.
//! 3. **Crash-safe outputs** ([`AtomicFile`]) — temp file + fsync +
//!    atomic rename, so no artifact can ever be observed half-written;
//!    [`AtomicFile::dry_run`] preflights a destination by opening the
//!    very temp path a later write will use.
//! 4. **Checkpoint journal** ([`Journal`]) — an append-only, per-line
//!    checksummed log that survives `SIGKILL` mid-append (a torn tail
//!    line is detected and discarded on load), the substrate for
//!    `regenerate --resume`.
//!
//! Process-wide injection/supervision counters are available through
//! [`stats`] regardless of any telemetry switch; the evaluation layer
//! mirrors them into the run's `TelemetrySnapshot` as `resil/…`.
//!
//! # Example
//!
//! ```
//! use detdiv_resil as resil;
//! use std::sync::atomic::{AtomicU32, Ordering};
//!
//! // A flaky job that fails twice, then succeeds: supervision retries
//! // it to completion and reports how many retries were needed.
//! let attempts = AtomicU32::new(0);
//! let outcome = resil::supervised("demo/flaky", &resil::RetryPolicy::default(), || {
//!     if attempts.fetch_add(1, Ordering::SeqCst) < 2 {
//!         panic!("transient");
//!     }
//!     42
//! });
//! match outcome {
//!     resil::CellOutcome::Ok { value, retries } => {
//!         assert_eq!(value, 42);
//!         assert_eq!(retries, 2);
//!     }
//!     resil::CellOutcome::Failed { .. } => unreachable!(),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::print_stdout, clippy::print_stderr)]

mod atomic_file;
mod fault;
mod journal;
mod supervise;

pub use atomic_file::AtomicFile;
pub use fault::{
    arm, arm_from_env, armed, disarm, io_point, point, suppress, would_inject, FaultKind,
    FaultPlan, SuppressGuard,
};
pub use journal::{checksum_line, Journal};
pub use supervise::{
    clear_failure_observer, set_failure_observer, supervised, CellOutcome, FailureObserver,
    RetryPolicy,
};

use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide fault-injection and supervision counters, independent
/// of any telemetry switch. Mirror these into `detdiv-obs` counters at
/// the layer that depends on both crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResilStats {
    /// Panics injected by [`point`] / [`io_point`].
    pub injected_panics: u64,
    /// Synthetic I/O errors injected by [`io_point`].
    pub injected_io_errors: u64,
    /// Artificial stalls injected by [`point`] / [`io_point`].
    pub injected_stalls: u64,
    /// Units of work run under [`supervised`].
    pub supervised_cells: u64,
    /// Retries performed across all supervised units.
    pub retries: u64,
    /// Supervised units that exhausted their retry budget and degraded
    /// to [`CellOutcome::Failed`].
    pub degraded_cells: u64,
    /// Supervised attempts whose wall time exceeded the policy's
    /// watchdog budget.
    pub watchdog_trips: u64,
}

#[derive(Debug, Default)]
pub(crate) struct StatCells {
    pub injected_panics: AtomicU64,
    pub injected_io_errors: AtomicU64,
    pub injected_stalls: AtomicU64,
    pub supervised_cells: AtomicU64,
    pub retries: AtomicU64,
    pub degraded_cells: AtomicU64,
    pub watchdog_trips: AtomicU64,
}

pub(crate) fn cells() -> &'static StatCells {
    static CELLS: StatCells = StatCells {
        injected_panics: AtomicU64::new(0),
        injected_io_errors: AtomicU64::new(0),
        injected_stalls: AtomicU64::new(0),
        supervised_cells: AtomicU64::new(0),
        retries: AtomicU64::new(0),
        degraded_cells: AtomicU64::new(0),
        watchdog_trips: AtomicU64::new(0),
    };
    &CELLS
}

/// Freezes the process-wide counters.
pub fn stats() -> ResilStats {
    let c = cells();
    ResilStats {
        injected_panics: c.injected_panics.load(Ordering::Relaxed),
        injected_io_errors: c.injected_io_errors.load(Ordering::Relaxed),
        injected_stalls: c.injected_stalls.load(Ordering::Relaxed),
        supervised_cells: c.supervised_cells.load(Ordering::Relaxed),
        retries: c.retries.load(Ordering::Relaxed),
        degraded_cells: c.degraded_cells.load(Ordering::Relaxed),
        watchdog_trips: c.watchdog_trips.load(Ordering::Relaxed),
    }
}

/// Zeroes the process-wide counters (per-site hit indices are *not*
/// reset — use [`fault::reset_hits`] via [`reset_all`] for that).
pub fn reset_stats() {
    let c = cells();
    c.injected_panics.store(0, Ordering::Relaxed);
    c.injected_io_errors.store(0, Ordering::Relaxed);
    c.injected_stalls.store(0, Ordering::Relaxed);
    c.supervised_cells.store(0, Ordering::Relaxed);
    c.retries.store(0, Ordering::Relaxed);
    c.degraded_cells.store(0, Ordering::Relaxed);
    c.watchdog_trips.store(0, Ordering::Relaxed);
}

/// [`reset_stats`] plus a reset of every per-site hit index, so a new
/// chaos run replays the fault plan from hit 0.
pub fn reset_all() {
    reset_stats();
    fault::reset_hits();
}

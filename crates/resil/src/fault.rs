//! Deterministic, seeded fault injection at named sites.
//!
//! A [`FaultPlan`] is armed process-wide (from `DETDIV_FAULT` or
//! programmatically). Instrumented code marks *sites* — `point("train/
//! stide")` in a training loop, `io_point("io/atomic_write")` in a file
//! writer — and the plan decides, per hit, whether to inject a fault
//! and which kind. The decision is a pure function of
//! `(seed, site, hit-index)`: rerunning the same workload with the same
//! seed trips exactly the same hits, which is what makes chaos runs
//! debuggable and the CI chaos gate reproducible.
//!
//! Disarmed (the default), every site costs one relaxed atomic load.

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::cells;

/// The kinds of fault the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `panic!` with a message naming the site and hit index.
    Panic,
    /// A synthetic [`io::Error`] (only at [`io_point`] sites; a plain
    /// [`point`] converts it into a panic carrying the same message, so
    /// non-I/O sites still exercise their unwind path).
    Io,
    /// An artificial stall of the plan's `stall` duration.
    Stall,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::Panic => "panic",
            FaultKind::Io => "io",
            FaultKind::Stall => "stall",
        })
    }
}

/// A seeded, replayable fault-injection plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the per-hit decision function.
    pub seed: u64,
    /// Per-hit injection probability in `[0, 1]`.
    pub rate: f64,
    /// Kinds to draw from (non-empty; drawn uniformly and
    /// deterministically per hit).
    pub kinds: Vec<FaultKind>,
    /// Duration of an injected [`FaultKind::Stall`].
    pub stall: Duration,
}

impl FaultPlan {
    /// A plan injecting `kinds` at `rate` under `seed`, with the
    /// default 2 ms stall.
    pub fn new(seed: u64, rate: f64, kinds: Vec<FaultKind>) -> FaultPlan {
        FaultPlan {
            seed,
            rate,
            kinds,
            stall: Duration::from_millis(2),
        }
    }

    /// Parses the `DETDIV_FAULT` / `--fault` specification
    /// `seed:rate:kinds[:stall_ms]`, where `kinds` is a comma-joined
    /// subset of `panic`, `io`, `stall`, or the word `all`.
    ///
    /// Examples: `42:0.01:panic`, `7:0.005:panic,stall:5`,
    /// `1:1%:all`.
    ///
    /// # Errors
    ///
    /// Returns a one-line human-readable description of the first
    /// malformed field.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut parts = spec.split(':');
        let seed: u64 = parts
            .next()
            .filter(|s| !s.trim().is_empty())
            .ok_or("missing seed (expected seed:rate:kinds[:stall_ms])")?
            .trim()
            .parse()
            .map_err(|e| format!("bad seed: {e}"))?;
        let rate_raw = parts
            .next()
            .ok_or("missing rate (expected seed:rate:kinds[:stall_ms])")?
            .trim();
        let rate: f64 = if let Some(percent) = rate_raw.strip_suffix('%') {
            percent
                .trim()
                .parse::<f64>()
                .map(|p| p / 100.0)
                .map_err(|e| format!("bad rate: {e}"))?
        } else {
            rate_raw.parse().map_err(|e| format!("bad rate: {e}"))?
        };
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("rate {rate} outside [0, 1]"));
        }
        let kinds_raw = parts
            .next()
            .ok_or("missing kinds (expected seed:rate:kinds[:stall_ms])")?
            .trim();
        let mut kinds = Vec::new();
        for kind in kinds_raw.split(',') {
            match kind.trim() {
                "panic" => kinds.push(FaultKind::Panic),
                "io" => kinds.push(FaultKind::Io),
                "stall" => kinds.push(FaultKind::Stall),
                "all" => {
                    kinds.extend([FaultKind::Panic, FaultKind::Io, FaultKind::Stall]);
                }
                other => return Err(format!("unknown fault kind {other:?}")),
            }
        }
        kinds.dedup();
        if kinds.is_empty() {
            return Err("no fault kinds given".to_owned());
        }
        let stall = match parts.next() {
            Some(ms) => Duration::from_millis(
                ms.trim()
                    .parse()
                    .map_err(|e| format!("bad stall_ms: {e}"))?,
            ),
            None => Duration::from_millis(2),
        };
        if parts.next().is_some() {
            return Err("trailing fields after stall_ms".to_owned());
        }
        Ok(FaultPlan {
            seed,
            rate,
            kinds,
            stall,
        })
    }

    /// The deterministic injection decision for the `index`-th hit of
    /// `site`: `None` (no fault) or the kind to inject. Pure — the same
    /// `(seed, site, index)` always yields the same answer.
    pub fn decide(&self, site: &str, index: u64) -> Option<FaultKind> {
        if self.kinds.is_empty() || self.rate <= 0.0 {
            return None;
        }
        let mixed = splitmix64(self.seed ^ fnv1a(site.as_bytes()) ^ splitmix64(index));
        // 53 uniform mantissa bits → u in [0, 1).
        let u = (mixed >> 11) as f64 / (1u64 << 53) as f64;
        if u >= self.rate {
            return None;
        }
        // An independent draw picks the kind, so the kind sequence does
        // not correlate with the hit/miss sequence.
        let pick = splitmix64(mixed) as usize % self.kinds.len();
        Some(self.kinds[pick])
    }
}

/// FNV-1a over bytes (site names).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------
// Process-global arming.

static ARMED: AtomicBool = AtomicBool::new(false);

struct Injector {
    plan: Option<FaultPlan>,
    /// Per-site hit counters; only touched while armed.
    hits: HashMap<String, u64>,
}

fn injector() -> &'static Mutex<Injector> {
    static INJECTOR: std::sync::OnceLock<Mutex<Injector>> = std::sync::OnceLock::new();
    INJECTOR.get_or_init(|| {
        Mutex::new(Injector {
            plan: None,
            hits: HashMap::new(),
        })
    })
}

fn lock_injector() -> std::sync::MutexGuard<'static, Injector> {
    // An injected panic unwinding through a site can poison this mutex;
    // the guarded state is always consistent at that point.
    injector()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Arms `plan` process-wide. Hit indices continue from where they were;
/// call [`crate::reset_all`] first for a replay from hit 0.
pub fn arm(plan: FaultPlan) {
    let mut inj = lock_injector();
    inj.plan = Some(plan);
    drop(inj);
    ARMED.store(true, Ordering::Release);
}

/// Disarms fault injection; sites return to a single relaxed load.
pub fn disarm() {
    ARMED.store(false, Ordering::Release);
    lock_injector().plan = None;
}

/// Whether a fault plan is currently armed.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arms from the `DETDIV_FAULT` environment variable if it is set.
/// Returns `Ok(true)` when a plan was armed, `Ok(false)` when the
/// variable is unset or empty.
///
/// # Errors
///
/// Returns the parse error for a malformed specification (callers
/// should exit non-zero rather than silently run without chaos).
pub fn arm_from_env() -> Result<bool, String> {
    match std::env::var("DETDIV_FAULT") {
        Ok(spec) if !spec.trim().is_empty() => {
            let plan =
                FaultPlan::parse(&spec).map_err(|e| format!("DETDIV_FAULT {spec:?}: {e}"))?;
            arm(plan);
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Zeroes every per-site hit index (see [`crate::reset_all`]).
pub(crate) fn reset_hits() {
    lock_injector().hits.clear();
}

thread_local! {
    /// Nesting depth of [`suppress`] guards on this thread. While
    /// non-zero, every fault site is inert — used by last-resort
    /// diagnostic paths (the flight recorder's crash dump runs inside
    /// a panic hook, where an injected panic would be a double panic
    /// and abort the process).
    static SUPPRESS_DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// RAII guard making every fault site on the current thread inert for
/// its lifetime. Produced by [`suppress`].
#[derive(Debug)]
pub struct SuppressGuard {
    _private: (),
}

impl Drop for SuppressGuard {
    fn drop(&mut self) {
        SUPPRESS_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
    }
}

/// Suppresses fault injection on the current thread until the returned
/// guard drops. Nests. For code that must not become a fault site even
/// under an armed chaos plan: crash-dump writers running inside panic
/// hooks, where an injected panic would abort the whole process.
pub fn suppress() -> SuppressGuard {
    SUPPRESS_DEPTH.with(|d| d.set(d.get() + 1));
    SuppressGuard { _private: () }
}

/// Claims the next hit of `site` and returns the armed plan's decision
/// (with the plan's stall duration), or `None` when disarmed / no
/// injection.
fn next_decision(site: &str) -> Option<(FaultKind, Duration, u64)> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    if SUPPRESS_DEPTH.with(std::cell::Cell::get) > 0 {
        return None;
    }
    let mut inj = lock_injector();
    let plan = inj.plan.clone()?;
    let counter = inj.hits.entry(site.to_owned()).or_insert(0);
    let index = *counter;
    *counter += 1;
    drop(inj);
    plan.decide(site, index)
        .map(|kind| (kind, plan.stall, index))
}

/// Pure query: what the armed plan would decide for the `index`-th hit
/// of `site`, without claiming a hit. `None` when disarmed.
pub fn would_inject(site: &str, index: u64) -> Option<FaultKind> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let plan = lock_injector().plan.clone()?;
    plan.decide(site, index)
}

/// A named fault-injection site for non-I/O code (detector training,
/// scoring, cache fill). May panic or stall according to the armed
/// plan; disarmed it costs one relaxed atomic load.
///
/// # Panics
///
/// Panics when the armed plan injects [`FaultKind::Panic`] — or
/// [`FaultKind::Io`], which a non-I/O site surfaces as a panic carrying
/// the same "synthetic I/O error" message.
pub fn point(site: &str) {
    let Some((kind, stall, index)) = next_decision(site) else {
        return;
    };
    match kind {
        FaultKind::Stall => {
            cells().injected_stalls.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(stall);
        }
        FaultKind::Panic => {
            cells().injected_panics.fetch_add(1, Ordering::Relaxed);
            panic!("detdiv-resil: injected panic at {site} (hit {index})");
        }
        FaultKind::Io => {
            cells().injected_panics.fetch_add(1, Ordering::Relaxed);
            panic!("detdiv-resil: synthetic I/O error at non-I/O site {site} (hit {index})");
        }
    }
}

/// A named fault-injection site for I/O code (artifact writers). May
/// return a synthetic error, panic, or stall according to the armed
/// plan; disarmed it costs one relaxed atomic load.
///
/// # Errors
///
/// Returns a synthetic [`io::Error`] (kind `Other`) when the armed plan
/// injects [`FaultKind::Io`].
///
/// # Panics
///
/// Panics when the armed plan injects [`FaultKind::Panic`].
pub fn io_point(site: &str) -> io::Result<()> {
    let Some((kind, stall, index)) = next_decision(site) else {
        return Ok(());
    };
    match kind {
        FaultKind::Stall => {
            cells().injected_stalls.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(stall);
            Ok(())
        }
        FaultKind::Io => {
            cells().injected_io_errors.fetch_add(1, Ordering::Relaxed);
            Err(io::Error::other(format!(
                "detdiv-resil: synthetic I/O error at {site} (hit {index})"
            )))
        }
        FaultKind::Panic => {
            cells().injected_panics.fetch_add(1, Ordering::Relaxed);
            panic!("detdiv-resil: injected panic at {site} (hit {index})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_forms() {
        let p = FaultPlan::parse("42:0.01:panic").unwrap();
        assert_eq!(p.seed, 42);
        assert!((p.rate - 0.01).abs() < 1e-12);
        assert_eq!(p.kinds, vec![FaultKind::Panic]);
        assert_eq!(p.stall, Duration::from_millis(2));

        let p = FaultPlan::parse("7:1%:panic,io,stall:5").unwrap();
        assert!((p.rate - 0.01).abs() < 1e-12);
        assert_eq!(
            p.kinds,
            vec![FaultKind::Panic, FaultKind::Io, FaultKind::Stall]
        );
        assert_eq!(p.stall, Duration::from_millis(5));

        let p = FaultPlan::parse("0:1:all").unwrap();
        assert_eq!(p.kinds.len(), 3);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "x:0.1:panic",
            "1:lots:panic",
            "1:2.0:panic",
            "1:-0.5:panic",
            "1:0.5:explode",
            "1:0.5:",
            "1:0.5:panic:abc",
            "1:0.5:panic:3:extra",
            "5",
            "5:0.5",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn decisions_are_pure_and_site_dependent() {
        let plan = FaultPlan::new(9, 0.5, vec![FaultKind::Panic, FaultKind::Stall]);
        let a: Vec<_> = (0..64).map(|i| plan.decide("train/stide", i)).collect();
        let b: Vec<_> = (0..64).map(|i| plan.decide("train/stide", i)).collect();
        assert_eq!(a, b, "same (seed, site, index) must replay exactly");
        let other: Vec<_> = (0..64).map(|i| plan.decide("train/markov", i)).collect();
        assert_ne!(a, other, "sites must decorrelate");
        let reseeded = FaultPlan::new(10, 0.5, plan.kinds.clone());
        let c: Vec<_> = (0..64).map(|i| reseeded.decide("train/stide", i)).collect();
        assert_ne!(a, c, "seeds must decorrelate");
    }

    #[test]
    fn rate_is_respected_in_the_large() {
        let plan = FaultPlan::new(3, 0.1, vec![FaultKind::Panic]);
        let hits = (0..10_000)
            .filter(|&i| plan.decide("rate/site", i).is_some())
            .count();
        assert!(
            (700..=1300).contains(&hits),
            "~10% of 10k hits expected, got {hits}"
        );
        let never = FaultPlan::new(3, 0.0, vec![FaultKind::Panic]);
        assert!((0..1000).all(|i| never.decide("rate/site", i).is_none()));
    }

    #[test]
    fn parse_display_kind_roundtrip() {
        for kind in [FaultKind::Panic, FaultKind::Io, FaultKind::Stall] {
            let p = FaultPlan::parse(&format!("1:0.5:{kind}")).unwrap();
            assert_eq!(p.kinds, vec![kind]);
        }
    }
}

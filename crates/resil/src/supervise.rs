//! Supervised execution: `catch_unwind` + bounded retry + a wall-clock
//! watchdog around one unit of work (typically one grid cell or row).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use crate::cells;

/// Callback invoked when a supervised unit exhausts its retry budget:
/// `(site, attempts, error)`. Installed by observability layers that
/// sit *above* this crate in the dependency graph (the flight
/// recorder), so degradation provenance is captured without resil
/// depending on any recorder.
pub type FailureObserver = Box<dyn Fn(&str, u32, &str) + Send + Sync>;

/// Fast gate so the disarmed failure path stays one relaxed load.
static OBSERVED: AtomicBool = AtomicBool::new(false);

fn observer() -> &'static Mutex<Option<FailureObserver>> {
    static OBSERVER: OnceLock<Mutex<Option<FailureObserver>>> = OnceLock::new();
    OBSERVER.get_or_init(|| Mutex::new(None))
}

/// Installs (or replaces) the process-wide failure observer. The
/// observer runs on the supervising thread, after the degradation
/// counters move and before [`CellOutcome::Failed`] is returned; it
/// must not panic.
pub fn set_failure_observer(f: FailureObserver) {
    *observer().lock().unwrap_or_else(PoisonError::into_inner) = Some(f);
    OBSERVED.store(true, Ordering::Relaxed);
}

/// Removes the failure observer installed by [`set_failure_observer`].
pub fn clear_failure_observer() {
    OBSERVED.store(false, Ordering::Relaxed);
    *observer().lock().unwrap_or_else(PoisonError::into_inner) = None;
}

fn notify_failure(site: &str, attempts: u32, error: &str) {
    if !OBSERVED.load(Ordering::Relaxed) {
        return;
    }
    if let Some(f) = observer()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .as_ref()
    {
        f(site, attempts, error);
    }
}

/// Retry and watchdog policy for [`supervised`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try + retries); at least 1.
    pub max_attempts: u32,
    /// Backoff before retry `n` (1-based) is `backoff * 2^(n-1)`,
    /// capped at 1 s. Zero disables sleeping.
    pub backoff: Duration,
    /// Wall-clock budget per attempt. An attempt that exceeds it is
    /// *flagged* (the `watchdog_trips` counter) — this crate spawns no
    /// threads, so a stuck attempt is detected, not preempted; the
    /// injection layer only produces bounded stalls.
    pub watchdog: Duration,
    /// Deterministic jitter seed. `None` (the default) keeps the exact
    /// exponential schedule; `Some(seed)` scales each sleep by a factor
    /// in `[0.5, 1.5)` drawn from `splitmix64` over
    /// `(seed, site, attempt)` — the same derivation [`FaultPlan`]
    /// uses — so concurrently retrying sites desynchronize without any
    /// wall-clock or RNG-state nondeterminism: the same
    /// `(seed, site, attempt)` always sleeps the same duration.
    ///
    /// [`FaultPlan`]: crate::FaultPlan
    pub jitter: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            backoff: Duration::from_millis(5),
            watchdog: Duration::from_secs(120),
            jitter: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, default watchdog).
    pub fn no_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The sleep [`supervised`] takes before retrying `site` after its
    /// `attempt`-th (1-based) failed attempt: `backoff * 2^(attempt-1)`
    /// capped at 1 s, scaled by the deterministic jitter factor when a
    /// jitter seed is set. Pure — exposed so callers (and the purity
    /// test) can predict the exact schedule.
    pub fn backoff_for(&self, site: &str, attempt: u32) -> Duration {
        if self.backoff.is_zero() {
            return Duration::ZERO;
        }
        let factor = 1u32 << attempt.saturating_sub(1).min(10);
        let base = self
            .backoff
            .saturating_mul(factor)
            .min(Duration::from_secs(1));
        let Some(seed) = self.jitter else {
            return base;
        };
        let mixed = crate::fault::splitmix64(
            seed ^ crate::fault::fnv1a(site.as_bytes())
                ^ crate::fault::splitmix64(u64::from(attempt)),
        );
        // 53 uniform mantissa bits → u in [0, 1); scale into [0.5, 1.5).
        let u = (mixed >> 11) as f64 / (1u64 << 53) as f64;
        base.mul_f64(0.5 + u).min(Duration::from_secs(1))
    }
}

/// The outcome of one supervised unit of work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellOutcome<R> {
    /// The unit completed (possibly after retries).
    Ok {
        /// The unit's result.
        value: R,
        /// How many failed attempts preceded success.
        retries: u32,
    },
    /// Every attempt panicked; the unit is degraded, not fatal.
    Failed {
        /// The supervision site (names the failing unit in reports).
        site: String,
        /// Attempts made (= the policy's `max_attempts`).
        attempts: u32,
        /// The final attempt's panic message.
        error: String,
    },
}

impl<R> CellOutcome<R> {
    /// The successful value, if any.
    pub fn ok(self) -> Option<R> {
        match self {
            CellOutcome::Ok { value, .. } => Some(value),
            CellOutcome::Failed { .. } => None,
        }
    }

    /// Whether the unit degraded to [`CellOutcome::Failed`].
    pub fn is_failed(&self) -> bool {
        matches!(self, CellOutcome::Failed { .. })
    }

    /// Retries consumed (0 for a first-attempt success or a failure's
    /// `attempts - 1`).
    pub fn retries(&self) -> u32 {
        match self {
            CellOutcome::Ok { retries, .. } => *retries,
            CellOutcome::Failed { attempts, .. } => attempts.saturating_sub(1),
        }
    }
}

/// Renders a panic payload as text.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `f` under `catch_unwind`, retrying panicking attempts with
/// exponential backoff up to `policy.max_attempts`, and flagging
/// attempts that exceed the watchdog budget. The result is always a
/// [`CellOutcome`] — a poisoned unit degrades instead of unwinding into
/// the caller.
///
/// Process-wide counters (`supervised_cells`, `retries`,
/// `degraded_cells`, `watchdog_trips`) record what happened; see
/// [`crate::stats`].
///
/// `f` must be re-callable (`Fn`) and is expected to be deterministic:
/// under the workspace's detector-conformance contract a retried cell
/// recomputes to the identical value, which is what keeps chaos runs
/// byte-identical to fault-free runs.
pub fn supervised<R>(site: &str, policy: &RetryPolicy, f: impl Fn() -> R) -> CellOutcome<R> {
    let c = cells();
    c.supervised_cells.fetch_add(1, Ordering::Relaxed);
    let max_attempts = policy.max_attempts.max(1);
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let started = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(&f));
        if started.elapsed() > policy.watchdog {
            c.watchdog_trips.fetch_add(1, Ordering::Relaxed);
        }
        match result {
            Ok(value) => {
                return CellOutcome::Ok {
                    value,
                    retries: attempt - 1,
                }
            }
            Err(payload) => {
                if attempt >= max_attempts {
                    c.degraded_cells.fetch_add(1, Ordering::Relaxed);
                    let error = panic_message(payload.as_ref());
                    notify_failure(site, attempt, &error);
                    return CellOutcome::Failed {
                        site: site.to_owned(),
                        attempts: attempt,
                        error,
                    };
                }
                c.retries.fetch_add(1, Ordering::Relaxed);
                let sleep = policy.backoff_for(site, attempt);
                if !sleep.is_zero() {
                    std::thread::sleep(sleep);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// Silences the default panic hook's backtrace spam for panics this
    /// test intentionally catches, restoring the hook afterwards.
    fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = f();
        std::panic::set_hook(hook);
        result
    }

    #[test]
    fn first_attempt_success_consumes_no_retries() {
        let before = crate::stats();
        let outcome = supervised("unit/ok", &RetryPolicy::default(), || 7);
        assert_eq!(
            outcome,
            CellOutcome::Ok {
                value: 7,
                retries: 0
            }
        );
        let after = crate::stats();
        assert_eq!(after.supervised_cells, before.supervised_cells + 1);
        assert_eq!(after.retries, before.retries);
    }

    #[test]
    fn transient_panics_are_retried_to_success() {
        quiet_panics(|| {
            let tries = AtomicU32::new(0);
            let policy = RetryPolicy {
                max_attempts: 5,
                backoff: Duration::ZERO,
                ..RetryPolicy::default()
            };
            let before = crate::stats();
            let outcome = supervised("unit/transient", &policy, || {
                if tries.fetch_add(1, Ordering::SeqCst) < 3 {
                    panic!("flaky");
                }
                "done"
            });
            assert_eq!(
                outcome,
                CellOutcome::Ok {
                    value: "done",
                    retries: 3
                }
            );
            let after = crate::stats();
            assert_eq!(after.retries, before.retries + 3);
            assert_eq!(after.degraded_cells, before.degraded_cells);
        });
    }

    #[test]
    fn exhausted_attempts_degrade_with_site_and_message() {
        quiet_panics(|| {
            let policy = RetryPolicy {
                max_attempts: 3,
                backoff: Duration::ZERO,
                ..RetryPolicy::default()
            };
            let before = crate::stats();
            let outcome: CellOutcome<()> =
                supervised("unit/poisoned", &policy, || panic!("always broken"));
            match &outcome {
                CellOutcome::Failed {
                    site,
                    attempts,
                    error,
                } => {
                    assert_eq!(site, "unit/poisoned");
                    assert_eq!(*attempts, 3);
                    assert_eq!(error, "always broken");
                }
                other => panic!("expected Failed, got {other:?}"),
            }
            assert!(outcome.is_failed());
            assert_eq!(outcome.retries(), 2);
            let after = crate::stats();
            assert_eq!(after.degraded_cells, before.degraded_cells + 1);
            assert_eq!(after.retries, before.retries + 2);
        });
    }

    #[test]
    fn failure_observer_sees_exhausted_units() {
        quiet_panics(|| {
            use std::sync::Arc;
            let seen: Arc<Mutex<Vec<(String, u32, String)>>> = Arc::new(Mutex::new(Vec::new()));
            let sink = Arc::clone(&seen);
            set_failure_observer(Box::new(move |site, attempts, error| {
                sink.lock()
                    .unwrap()
                    .push((site.to_owned(), attempts, error.to_owned()));
            }));
            let policy = RetryPolicy {
                max_attempts: 2,
                backoff: Duration::ZERO,
                ..RetryPolicy::default()
            };
            let _: CellOutcome<()> = supervised("unit/observed", &policy, || panic!("dead"));
            // A successful unit must not notify.
            let _ = supervised("unit/fine", &policy, || 1);
            clear_failure_observer();
            let seen = seen.lock().unwrap();
            assert_eq!(
                seen.as_slice(),
                &[("unit/observed".to_owned(), 2, "dead".to_owned())]
            );
        });
    }

    #[test]
    fn watchdog_flags_slow_attempts() {
        let policy = RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
            watchdog: Duration::from_micros(1),
            ..RetryPolicy::default()
        };
        let before = crate::stats();
        let outcome = supervised("unit/slow", &policy, || {
            std::thread::sleep(Duration::from_millis(5));
            1
        });
        assert_eq!(outcome.ok(), Some(1));
        let after = crate::stats();
        assert!(after.watchdog_trips > before.watchdog_trips);
    }

    #[test]
    fn backoff_without_jitter_is_the_exact_exponential_schedule() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.backoff_for("any/site", 1), Duration::from_millis(5));
        assert_eq!(policy.backoff_for("any/site", 2), Duration::from_millis(10));
        assert_eq!(policy.backoff_for("any/site", 3), Duration::from_millis(20));
        // Capped at 1 s regardless of attempt.
        assert_eq!(policy.backoff_for("any/site", 30), Duration::from_secs(1));
        // Zero backoff stays zero.
        let quiet = RetryPolicy {
            backoff: Duration::ZERO,
            jitter: Some(42),
            ..RetryPolicy::default()
        };
        assert_eq!(quiet.backoff_for("any/site", 5), Duration::ZERO);
    }

    #[test]
    fn jittered_backoff_is_pure_bounded_and_site_dependent() {
        let policy = RetryPolicy {
            jitter: Some(0xdead_beef),
            ..RetryPolicy::default()
        };
        for attempt in 1..=12u32 {
            for site in ["grid/cell", "serve/drain", "eval/row"] {
                let a = policy.backoff_for(site, attempt);
                let b = policy.backoff_for(site, attempt);
                assert_eq!(a, b, "same (seed, site, attempt) → same sleep");
                let base = RetryPolicy::default().backoff_for(site, attempt);
                assert!(
                    a >= base.mul_f64(0.5) && a <= Duration::from_secs(1),
                    "jitter stays within [0.5x base, 1 s]: {a:?} vs base {base:?}"
                );
            }
        }
        // Distinct sites (and seeds) desynchronize: at least one of the
        // first attempts must differ.
        let other = RetryPolicy {
            jitter: Some(1),
            ..RetryPolicy::default()
        };
        assert!(
            (1..=4u32).any(|n| {
                policy.backoff_for("grid/cell", n) != policy.backoff_for("eval/row", n)
                    || policy.backoff_for("grid/cell", n) != other.backoff_for("grid/cell", n)
            }),
            "jitter must actually perturb the schedule"
        );
    }

    #[test]
    fn zero_max_attempts_still_runs_once() {
        let policy = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(supervised("unit/zero", &policy, || 9).ok(), Some(9));
    }
}

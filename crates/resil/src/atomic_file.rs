//! Crash-safe artifact writing: temp file + fsync + atomic rename.
//!
//! Every artifact the workspace emits (report JSON, telemetry, traces,
//! corpus streams, bench baselines) goes through [`AtomicFile`], so an
//! interrupted process can never leave a half-written file at the final
//! path: observers see either the previous complete content or the new
//! complete content, nothing in between.

use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::fault::io_point;

/// Fault-injection site claimed once per atomic write/commit.
const WRITE_SITE: &str = "io/atomic_write";
/// Fault-injection site claimed once per commit (rename) step.
const COMMIT_SITE: &str = "io/atomic_commit";

/// A buffered writer to a *temporary* sibling of the destination path;
/// the destination only appears (atomically, via `rename`) when
/// [`AtomicFile::commit`] succeeds. Dropping without committing removes
/// the temporary file.
///
/// The temporary path is deterministic (`.<name>.detdiv-tmp` in the
/// destination directory), so [`AtomicFile::dry_run`] preflights the
/// *actual* path a later write will use, and litter from a crashed run
/// is overwritten — not accumulated — by the retry.
#[derive(Debug)]
pub struct AtomicFile {
    path: PathBuf,
    tmp: PathBuf,
    writer: Option<BufWriter<File>>,
}

/// The deterministic temporary sibling for `path`.
fn tmp_path(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unnamed".to_owned());
    path.with_file_name(format!(".{name}.detdiv-tmp"))
}

impl AtomicFile {
    /// Opens the temporary sibling of `path` for writing.
    ///
    /// # Errors
    ///
    /// Propagates the temp-file creation error (missing directory,
    /// permissions, read-only mount) — the same failure a later
    /// [`AtomicFile::commit`] would have hit, surfaced early.
    pub fn create(path: impl Into<PathBuf>) -> io::Result<AtomicFile> {
        let path = path.into();
        let tmp = tmp_path(&path);
        io_point(WRITE_SITE)?;
        let file = File::create(&tmp)?;
        Ok(AtomicFile {
            path,
            tmp,
            writer: Some(BufWriter::new(file)),
        })
    }

    /// The destination path this writer will commit to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Flushes, fsyncs, and atomically renames the temporary file over
    /// the destination. On any error the temporary file is removed and
    /// the destination is untouched.
    ///
    /// # Errors
    ///
    /// Propagates the first flush/fsync/rename failure.
    pub fn commit(mut self) -> io::Result<()> {
        let writer = self
            .writer
            .take()
            .expect("writer present until commit or drop");
        let result = (|| {
            io_point(COMMIT_SITE)?;
            let file = writer
                .into_inner()
                .map_err(|e| io::Error::other(e.to_string()))?;
            file.sync_all()?;
            drop(file);
            fs::rename(&self.tmp, &self.path)?;
            // Durability of the rename itself: fsync the directory when
            // the platform allows opening it (best-effort elsewhere).
            if let Some(dir) = self.path.parent() {
                let dir = if dir.as_os_str().is_empty() {
                    Path::new(".")
                } else {
                    dir
                };
                if let Ok(d) = File::open(dir) {
                    let _ = d.sync_all();
                }
            }
            Ok(())
        })();
        if result.is_err() {
            let _ = fs::remove_file(&self.tmp);
        }
        result
    }

    /// Writes `contents` to `path` atomically: the crash-safe
    /// replacement for `std::fs::write` at every artifact site.
    ///
    /// # Errors
    ///
    /// Propagates the underlying create/write/fsync/rename failure; the
    /// destination is untouched on error.
    pub fn write(path: impl Into<PathBuf>, contents: impl AsRef<[u8]>) -> io::Result<()> {
        let mut file = AtomicFile::create(path)?;
        file.write_all(contents.as_ref())?;
        file.commit()
    }

    /// Preflights `path` as a write destination *without* touching any
    /// existing file at it: verifies the target is not a directory and
    /// that the deterministic temporary sibling — the path a later
    /// [`AtomicFile::write`] will actually use — can be created, then
    /// removes the probe.
    ///
    /// # Errors
    ///
    /// Returns a one-line human-readable diagnostic suitable for a CLI
    /// preflight (`milliseconds now instead of an error after the full
    /// evaluation`).
    pub fn dry_run(path: impl AsRef<Path>) -> Result<(), String> {
        let path = path.as_ref();
        if path.is_dir() {
            return Err(format!(
                "{} is a directory, not a file path",
                path.display()
            ));
        }
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => PathBuf::from("."),
        };
        if !parent.is_dir() {
            return Err(format!(
                "output directory {} does not exist",
                parent.display()
            ));
        }
        let tmp = tmp_path(path);
        File::create(&tmp)
            .map_err(|e| format!("output directory {} is not writable: {e}", parent.display()))?;
        let _ = fs::remove_file(&tmp);
        Ok(())
    }
}

impl Write for AtomicFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.writer
            .as_mut()
            .expect("writer present until commit or drop")
            .write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer
            .as_mut()
            .expect("writer present until commit or drop")
            .flush()
    }
}

impl Drop for AtomicFile {
    fn drop(&mut self) {
        if self.writer.take().is_some() {
            // Not committed: drop the buffered writer first, then the
            // temp file — the destination is never touched.
            let _ = fs::remove_file(&self.tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("detdiv-resil-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_then_read_roundtrip_leaves_no_temp() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("artifact.json");
        AtomicFile::write(&path, b"{\"ok\":true}").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{\"ok\":true}");
        assert!(!tmp_path(&path).exists(), "temp must be gone after commit");
        // Overwrite is equally atomic.
        AtomicFile::write(&path, b"v2").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"v2");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn streaming_writer_commits_atomically() {
        let dir = temp_dir("stream");
        let path = dir.join("stream.txt");
        let mut file = AtomicFile::create(&path).unwrap();
        for i in 0..100 {
            writeln!(file, "{i}").unwrap();
        }
        assert!(!path.exists(), "destination must not appear before commit");
        file.commit().unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 100);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropping_uncommitted_removes_temp_and_preserves_destination() {
        let dir = temp_dir("abort");
        let path = dir.join("keep.txt");
        fs::write(&path, b"original").unwrap();
        {
            let mut file = AtomicFile::create(&path).unwrap();
            file.write_all(b"half-written garbage").unwrap();
            // Dropped without commit.
        }
        assert_eq!(fs::read(&path).unwrap(), b"original");
        assert!(!tmp_path(&path).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dry_run_accepts_writable_and_rejects_bad_targets() {
        let dir = temp_dir("dryrun");
        let path = dir.join("out.json");
        AtomicFile::dry_run(&path).unwrap();
        assert!(!tmp_path(&path).exists(), "probe must be cleaned up");
        assert!(AtomicFile::dry_run(&dir)
            .unwrap_err()
            .contains("is a directory"));
        assert!(AtomicFile::dry_run(dir.join("missing/sub/out.json"))
            .unwrap_err()
            .contains("does not exist"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_fails_fast_on_missing_directory() {
        let missing = std::env::temp_dir().join("detdiv-resil-definitely-missing/x.txt");
        assert!(AtomicFile::create(&missing).is_err());
    }

    #[test]
    fn deterministic_tmp_path_is_a_hidden_sibling() {
        let t = tmp_path(Path::new("/a/b/report.json"));
        assert_eq!(t, PathBuf::from("/a/b/.report.json.detdiv-tmp"));
    }
}

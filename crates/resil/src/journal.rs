//! Append-only, per-line checksummed checkpoint journal.
//!
//! The journal is the substrate for `regenerate --resume`: each
//! completed unit of work (a coverage-map row, in the evaluation layer)
//! is appended as one line and fsynced, so a process killed at any
//! instant loses at most the line being written. On load, every line's
//! checksum is verified; a torn tail line (the signature of a mid-append
//! `SIGKILL`) is detected and silently discarded, while corruption
//! *before* the tail is reported as an error — that indicates tampering
//! or disk fault, not a crash.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::fault::io_point;

/// Fault-injection site claimed once per journal append.
const APPEND_SITE: &str = "io/journal_append";

/// FNV-1a 64-bit, the same hash the workspace uses for corpus
/// fingerprints — stable across platforms and runs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Renders `payload` as one checksummed journal line **without** the
/// trailing newline: `<fnv1a-hex-16> <payload>`. This is the exact
/// wire format [`Journal`] appends and [`Journal::load`] verifies, so
/// other subsystems (the flight recorder's audit dumps) can emit
/// journal-compatible files without owning a `Journal`.
pub fn checksum_line(payload: &str) -> String {
    format!("{:016x} {payload}", fnv1a(payload.as_bytes()))
}

/// An append-only log of checkpoint records that survives `SIGKILL`
/// mid-append.
///
/// Wire format: one record per line, `<fnv1a-hex-16> <payload>\n`.
/// Payloads must not contain `\n` (CR or other control bytes are the
/// caller's business; the checksum covers the payload verbatim).
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
}

impl Journal {
    /// Opens `path` for appending, creating it if absent.
    ///
    /// # Errors
    ///
    /// Propagates the open/create failure.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Journal> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Journal { path, file })
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one checksummed record and fsyncs, so the record is
    /// durable before the caller proceeds to the next unit of work.
    ///
    /// # Errors
    ///
    /// Rejects payloads containing `\n` (they would corrupt framing);
    /// propagates write/fsync failures.
    pub fn append(&mut self, payload: &str) -> io::Result<()> {
        if payload.contains('\n') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "journal payload must not contain newlines",
            ));
        }
        io_point(APPEND_SITE)?;
        let line = format!("{:016x} {payload}\n", fnv1a(payload.as_bytes()));
        self.file.write_all(line.as_bytes())?;
        self.file.sync_all()?;
        Ok(())
    }

    /// Loads every intact record from `path`, in append order.
    ///
    /// A missing file yields an empty list (a resume with no checkpoint
    /// simply recomputes everything). A torn *tail* line — short,
    /// unframed, or checksum-mismatched — is discarded: that is the
    /// expected residue of a kill mid-append. A corrupt line *before*
    /// the tail is an error, because appends are fsynced in order and
    /// an interior tear cannot happen by crashing.
    ///
    /// # Errors
    ///
    /// Propagates read failures (other than `NotFound`) and reports
    /// interior corruption with the offending line number.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Vec<String>> {
        let path = path.as_ref();
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut records = Vec::new();
        // Manual split keeps track of whether the final line was
        // newline-terminated: an unterminated tail is torn by
        // definition.
        let lines: Vec<&str> = text.split('\n').collect();
        let terminated = text.ends_with('\n');
        // `split` yields a trailing "" when the text ends with '\n'.
        let effective: &[&str] = if terminated {
            &lines[..lines.len().saturating_sub(1)]
        } else {
            &lines
        };
        for (i, line) in effective.iter().enumerate() {
            let is_tail = i + 1 == effective.len();
            let parsed = parse_line(line);
            match parsed {
                Some(payload) if !is_tail || terminated => records.push(payload.to_owned()),
                Some(payload) => {
                    // Intact checksum but no trailing newline: the
                    // payload is complete (checksum proves it), keep it.
                    records.push(payload.to_owned());
                }
                None if is_tail => {
                    // Torn tail: expected crash residue, discard.
                }
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "journal {} corrupt at line {} (not the tail): {:?}",
                            path.display(),
                            i + 1,
                            truncate_for_error(line)
                        ),
                    ));
                }
            }
        }
        Ok(records)
    }

    /// Removes the journal file at `path`, tolerating its absence.
    ///
    /// # Errors
    ///
    /// Propagates removal failures other than `NotFound`.
    pub fn remove(path: impl AsRef<Path>) -> io::Result<()> {
        match fs::remove_file(path.as_ref()) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

/// Verifies one journal line; returns the payload when the framing and
/// checksum are intact.
fn parse_line(line: &str) -> Option<&str> {
    let (sum, payload) = line.split_at_checked(16)?;
    let payload = payload.strip_prefix(' ')?;
    let expect = u64::from_str_radix(sum, 16).ok()?;
    (fnv1a(payload.as_bytes()) == expect).then_some(payload)
}

/// Clips a corrupt line for an error message.
fn truncate_for_error(line: &str) -> String {
    const MAX: usize = 48;
    if line.len() <= MAX {
        line.to_owned()
    } else {
        let mut end = MAX;
        while !line.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &line[..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("detdiv-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_then_load_roundtrips_in_order() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("ckpt.journal");
        {
            let mut j = Journal::open(&path).unwrap();
            j.append("row|stide|6|DWBU").unwrap();
            j.append("row|stide|7|DDDD").unwrap();
            j.append("row|bloom|6|UUUU").unwrap();
        }
        assert_eq!(
            Journal::load(&path).unwrap(),
            vec!["row|stide|6|DWBU", "row|stide|7|DDDD", "row|bloom|6|UUUU"]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_line_matches_the_append_wire_format() {
        let dir = temp_dir("checksum-line");
        let path = dir.join("ckpt.journal");
        Journal::open(&path).unwrap().append("payload-x").unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text, format!("{}\n", checksum_line("payload-x")));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_loads_empty() {
        let dir = temp_dir("missing");
        assert!(Journal::load(dir.join("absent.journal"))
            .unwrap()
            .is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_appends_after_existing_records() {
        let dir = temp_dir("reopen");
        let path = dir.join("ckpt.journal");
        Journal::open(&path).unwrap().append("first").unwrap();
        Journal::open(&path).unwrap().append("second").unwrap();
        assert_eq!(Journal::load(&path).unwrap(), vec!["first", "second"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_line_is_discarded() {
        let dir = temp_dir("torn");
        let path = dir.join("ckpt.journal");
        {
            let mut j = Journal::open(&path).unwrap();
            j.append("intact-one").unwrap();
            j.append("intact-two").unwrap();
        }
        // Simulate a kill mid-append: a partial final line.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"0123456789abcdef half-writ").unwrap();
        drop(f);
        // The checksum cannot match the truncated payload.
        assert_eq!(
            Journal::load(&path).unwrap(),
            vec!["intact-one", "intact-two"]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unterminated_but_intact_tail_is_kept() {
        let dir = temp_dir("no-newline");
        let path = dir.join("ckpt.journal");
        let payload = "complete";
        let line = format!("{:016x} {payload}", fnv1a(payload.as_bytes()));
        fs::write(&path, line).unwrap();
        assert_eq!(Journal::load(&path).unwrap(), vec!["complete"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interior_corruption_is_an_error_not_a_silent_drop() {
        let dir = temp_dir("interior");
        let path = dir.join("ckpt.journal");
        {
            let mut j = Journal::open(&path).unwrap();
            j.append("good-one").unwrap();
            j.append("good-two").unwrap();
        }
        let mut text = fs::read_to_string(&path).unwrap();
        // Flip a byte in the FIRST line's payload.
        text = text.replacen("good-one", "g0od-one", 1);
        fs::write(&path, text).unwrap();
        let err = Journal::load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 1"), "got: {err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn newline_in_payload_is_rejected() {
        let dir = temp_dir("newline");
        let mut j = Journal::open(dir.join("ckpt.journal")).unwrap();
        let err = j.append("two\nlines").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_only_file_with_multiple_lines_errors() {
        let dir = temp_dir("garbage");
        let path = dir.join("ckpt.journal");
        fs::write(&path, "not a journal\nat all\n").unwrap();
        assert!(Journal::load(&path).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_tolerates_absence() {
        let dir = temp_dir("remove");
        let path = dir.join("ckpt.journal");
        Journal::remove(&path).unwrap();
        Journal::open(&path).unwrap().append("x").unwrap();
        Journal::remove(&path).unwrap();
        assert!(!path.exists());
        let _ = fs::remove_dir_all(&dir);
    }
}

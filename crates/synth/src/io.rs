//! Corpus persistence: the evaluation suite as on-disk files.
//!
//! The paper's final evaluation suite is a set of files — "one stream of
//! training data and 8 streams of test data ... replicated for each
//! detector-window length" (§5.4.2). This module writes and reads that
//! suite: one symbol per line per stream (the same shape as the UNM
//! trace format's call column), plus a JSON manifest recording the
//! configuration, anomalies and injection positions. Replication per
//! window is unnecessary on disk (the contents are identical); the
//! manifest's window range stands in for it.
//!
//! Loading re-runs the full invariant verification, so a tampered or
//! truncated suite is rejected rather than silently mis-evaluated.

use std::fmt;
use std::fs;
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;

use detdiv_resil::AtomicFile;
use detdiv_sequence::Symbol;
use serde::{Deserialize, Serialize};

use crate::anomaly::Anomaly;
use crate::config::SynthesisConfig;
use crate::corpus::Corpus;
use crate::error::SynthesisError;

/// Errors arising while persisting or loading a corpus.
#[derive(Debug)]
#[non_exhaustive]
pub enum CorpusIoError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// A stream or manifest file was malformed.
    Malformed {
        /// Which file.
        file: String,
        /// What was wrong.
        reason: String,
    },
    /// The loaded suite failed invariant verification.
    Verification(SynthesisError),
}

impl fmt::Display for CorpusIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusIoError::Io(e) => write!(f, "corpus io: {e}"),
            CorpusIoError::Malformed { file, reason } => {
                write!(f, "malformed corpus file {file}: {reason}")
            }
            CorpusIoError::Verification(e) => write!(f, "loaded corpus failed verification: {e}"),
        }
    }
}

impl std::error::Error for CorpusIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorpusIoError::Io(e) => Some(e),
            CorpusIoError::Malformed { .. } => None,
            CorpusIoError::Verification(e) => Some(e),
        }
    }
}

impl From<io::Error> for CorpusIoError {
    fn from(e: io::Error) -> Self {
        CorpusIoError::Io(e)
    }
}

/// The manifest stored next to the streams.
#[derive(Debug, Serialize, Deserialize)]
struct Manifest {
    format_version: u32,
    config: SynthesisConfig,
    anomalies: Vec<ManifestAnomaly>,
}

#[derive(Debug, Serialize, Deserialize)]
struct ManifestAnomaly {
    size: usize,
    symbols: Vec<u32>,
    injection_position: usize,
}

const FORMAT_VERSION: u32 = 1;
const MANIFEST_FILE: &str = "manifest.json";
const TRAINING_FILE: &str = "training.txt";

fn test_file(anomaly_size: usize) -> String {
    format!("test_as{anomaly_size}.txt")
}

fn write_stream(path: &Path, stream: &[Symbol]) -> Result<(), CorpusIoError> {
    // Crash-safe: the stream file appears complete (on commit) or not
    // at all, so an interrupted save can never leave a truncated stream
    // that verification would have to catch later.
    let mut w = AtomicFile::create(path)?;
    for s in stream {
        writeln!(w, "{}", s.id())?;
    }
    w.commit()?;
    Ok(())
}

fn read_stream(path: &Path) -> Result<Vec<Symbol>, CorpusIoError> {
    let file = fs::File::open(path)?;
    let reader = BufReader::new(file);
    let name = path.display().to_string();
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let id: u32 = trimmed.parse().map_err(|_| CorpusIoError::Malformed {
            file: name.clone(),
            reason: format!("line {}: not a symbol id: {trimmed:?}", i + 1),
        })?;
        out.push(Symbol::new(id));
    }
    Ok(out)
}

/// Writes `corpus` into `dir` (created if needed): `training.txt`, one
/// `test_as{N}.txt` per anomaly size, and `manifest.json`.
///
/// # Errors
///
/// Returns [`CorpusIoError::Io`] on filesystem failures.
pub fn save_corpus(corpus: &Corpus, dir: &Path) -> Result<(), CorpusIoError> {
    fs::create_dir_all(dir)?;
    write_stream(&dir.join(TRAINING_FILE), corpus.training())?;
    let mut anomalies = Vec::new();
    for anomaly in corpus.anomalies() {
        let size = anomaly.len();
        let test = corpus
            .test_stream(size)
            .expect("anomaly sizes and test streams are built together");
        write_stream(&dir.join(test_file(size)), &test.stream)?;
        anomalies.push(ManifestAnomaly {
            size,
            symbols: anomaly.symbols().iter().map(|s| s.id()).collect(),
            injection_position: test.injection_position,
        });
    }
    let manifest = Manifest {
        format_version: FORMAT_VERSION,
        config: corpus.config().clone(),
        anomalies,
    };
    let json = serde_json::to_string_pretty(&manifest).map_err(|e| CorpusIoError::Malformed {
        file: MANIFEST_FILE.to_owned(),
        reason: format!("manifest serialisation failed: {e}"),
    })?;
    AtomicFile::write(dir.join(MANIFEST_FILE), json)?;
    Ok(())
}

/// Loads a corpus previously written by [`save_corpus`], re-running the
/// full invariant verification.
///
/// # Errors
///
/// * [`CorpusIoError::Io`] on filesystem failures;
/// * [`CorpusIoError::Malformed`] on unparsable files or a
///   format-version mismatch;
/// * [`CorpusIoError::Verification`] if the loaded suite violates the
///   corpus invariants (tampering, truncation, manifest drift).
pub fn load_corpus(dir: &Path) -> Result<Corpus, CorpusIoError> {
    let manifest_path = dir.join(MANIFEST_FILE);
    let json = fs::read_to_string(&manifest_path)?;
    let manifest: Manifest = serde_json::from_str(&json).map_err(|e| CorpusIoError::Malformed {
        file: manifest_path.display().to_string(),
        reason: e.to_string(),
    })?;
    if manifest.format_version != FORMAT_VERSION {
        return Err(CorpusIoError::Malformed {
            file: manifest_path.display().to_string(),
            reason: format!(
                "format version {} unsupported (expected {FORMAT_VERSION})",
                manifest.format_version
            ),
        });
    }
    let training = read_stream(&dir.join(TRAINING_FILE))?;
    let mut parts = Vec::new();
    for a in &manifest.anomalies {
        let stream = read_stream(&dir.join(test_file(a.size)))?;
        let anomaly = Anomaly::new(a.symbols.iter().map(|&id| Symbol::new(id)).collect());
        if anomaly.len() != a.size {
            return Err(CorpusIoError::Malformed {
                file: MANIFEST_FILE.to_owned(),
                reason: format!(
                    "anomaly of declared size {} has {} symbols",
                    a.size,
                    anomaly.len()
                ),
            });
        }
        parts.push((anomaly, stream, a.injection_position));
    }
    Corpus::from_parts(manifest.config, training, parts).map_err(CorpusIoError::Verification)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthesisConfig;

    fn small_corpus() -> Corpus {
        let config = SynthesisConfig::builder()
            .training_len(30_000)
            .anomaly_sizes(2..=3)
            .windows(2..=4)
            .background_len(512)
            .plant_repeats(3)
            .seed(44)
            .build()
            .unwrap();
        Corpus::synthesize(&config).unwrap()
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("detdiv-io-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_roundtrip() {
        let corpus = small_corpus();
        let dir = temp_dir("roundtrip");
        save_corpus(&corpus, &dir).unwrap();
        let loaded = load_corpus(&dir).unwrap();
        assert_eq!(loaded.training(), corpus.training());
        assert_eq!(
            loaded.anomaly(3).unwrap().symbols(),
            corpus.anomaly(3).unwrap().symbols()
        );
        let a = corpus.case(2, 3).unwrap();
        let b = loaded.case(2, 3).unwrap();
        use detdiv_core::LabeledCase;
        assert_eq!(a.test_stream(), b.test_stream());
        assert_eq!(a.injection_position(), b.injection_position());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_training_is_rejected() {
        let corpus = small_corpus();
        let dir = temp_dir("tamper");
        save_corpus(&corpus, &dir).unwrap();
        // Append the full size-3 anomaly to the training stream: the
        // anomaly is no longer foreign, so verification must fail.
        let mut text = fs::read_to_string(dir.join(TRAINING_FILE)).unwrap();
        for s in corpus.anomaly(3).unwrap().symbols() {
            text.push_str(&format!("{}\n", s.id()));
        }
        fs::write(dir.join(TRAINING_FILE), text).unwrap();
        assert!(matches!(
            load_corpus(&dir),
            Err(CorpusIoError::Verification(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_stream_is_rejected() {
        let corpus = small_corpus();
        let dir = temp_dir("malformed");
        save_corpus(&corpus, &dir).unwrap();
        fs::write(dir.join(test_file(2)), "1\nnot-a-symbol\n2\n").unwrap();
        assert!(matches!(
            load_corpus(&dir),
            Err(CorpusIoError::Malformed { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_io_error() {
        assert!(matches!(
            load_corpus(Path::new("/nonexistent/detdiv")),
            Err(CorpusIoError::Io(_))
        ));
    }

    #[test]
    fn wrong_format_version_is_rejected() {
        let corpus = small_corpus();
        let dir = temp_dir("version");
        save_corpus(&corpus, &dir).unwrap();
        let manifest = fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap();
        let bumped = manifest.replace("\"format_version\": 1", "\"format_version\": 99");
        fs::write(dir.join(MANIFEST_FILE), bumped).unwrap();
        assert!(matches!(
            load_corpus(&dir),
            Err(CorpusIoError::Malformed { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Post-synthesis invariant verification (DESIGN.md §2.2).
//!
//! The paper's injection procedure is generate-and-verify: "It is easy to
//! generate such sequences, and to verify their foreign-ness and
//! minimality characteristics. ... It must be ensured that no background
//! data sequences or boundary sequences register as foreign or rare. If
//! this is not possible for some location in the trace, a new anomaly
//! must be produced as a replacement, and the process repeated." (§5.4.2)
//!
//! This module is the verifier half of that loop. It checks, against the
//! assembled training stream:
//!
//! 1. every anomaly is a **minimal foreign sequence composed of rare
//!    subsequences** (foreign as a whole; both proper flanks present and
//!    rare);
//! 2. for every (anomaly size, detector window) case, every test-stream
//!    window **containing the whole anomaly is foreign**, every other
//!    in-span (boundary or interior) window **exists** in the training
//!    data, and every out-of-span background window is **common**.

use detdiv_sequence::SubstringIndex;

use crate::corpus::Corpus;
use crate::error::SynthesisError;

fn fail(check: impl Into<String>) -> SynthesisError {
    SynthesisError::VerificationFailed {
        check: check.into(),
    }
}

/// Runs the full invariant suite against `corpus`.
pub(crate) fn verify_corpus(corpus: &Corpus) -> Result<(), SynthesisError> {
    let config = corpus.config();
    let training = corpus.training();
    let alphabet = corpus.alphabet();

    if !alphabet.contains_all(training) {
        return Err(fail("training stream leaves the alphabet"));
    }

    if training.len() < config.max_window().max(config.max_anomaly()) {
        return Err(fail("training stream shorter than the largest window"));
    }
    // One suffix-automaton pass answers every presence/frequency question
    // below, for any pattern length.
    let index = SubstringIndex::build(training);

    // Invariant 1: each anomaly is an MFS composed of rare subsequences.
    for anomaly_size in config.anomaly_sizes() {
        let anomaly = corpus
            .anomaly(anomaly_size)
            .ok_or_else(|| fail(format!("missing anomaly of size {anomaly_size}")))?;
        let gram = anomaly.symbols();
        if !index.is_foreign(gram) {
            return Err(fail(format!(
                "anomaly {anomaly} occurs in the training data"
            )));
        }
        if !index.is_minimal_foreign(gram) {
            return Err(fail(format!("anomaly {anomaly} is not minimal")));
        }
        // Composed of rare subsequences: both proper flanks are rare
        // (for size 2 the flanks are single symbols; minimality already
        // guarantees their presence).
        if gram.len() > 2
            && !(index.is_rare(&gram[..gram.len() - 1], config.rare_threshold())
                && index.is_rare(&gram[1..], config.rare_threshold()))
        {
            return Err(fail(format!(
                "anomaly {anomaly} is not composed of rare subsequences"
            )));
        }
    }

    // Invariant 2: per-case window taxonomy.
    for anomaly_size in config.anomaly_sizes() {
        let test = corpus
            .test_stream(anomaly_size)
            .ok_or_else(|| fail(format!("missing test stream for size {anomaly_size}")))?;
        let stream = &test.stream;
        let p = test.injection_position;
        if p + anomaly_size > stream.len() {
            return Err(fail("injection position out of bounds"));
        }
        for window in config.windows() {
            for (start, w) in stream.windows(window).enumerate() {
                let contains_anomaly = start <= p && start + window >= p + anomaly_size;
                let in_span = start + window > p && start < p + anomaly_size;
                if contains_anomaly {
                    if !index.is_foreign(w) {
                        return Err(fail(format!(
                            "size-{anomaly_size} anomaly: window at {start} (DW {window}) contains the whole anomaly but is not foreign"
                        )));
                    }
                } else if in_span {
                    if !index.contains(w) {
                        return Err(fail(format!(
                            "size-{anomaly_size} anomaly: boundary window at {start} (DW {window}) is foreign"
                        )));
                    }
                } else if index.relative_frequency(w) < config.rare_threshold() {
                    return Err(fail(format!(
                        "size-{anomaly_size} anomaly: background window at {start} (DW {window}) is not common"
                    )));
                }
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::config::SynthesisConfig;
    use crate::corpus::Corpus;

    /// Full-grid verification at the paper's anomaly/window ranges on a
    /// reduced training length. (The default 1 M stream is exercised by
    /// the benchmark harness.)
    #[test]
    fn paper_grid_verifies_on_reduced_corpus() {
        let config = SynthesisConfig::builder()
            .training_len(120_000)
            .background_len(1024)
            .seed(2005)
            .build()
            .unwrap();
        let corpus = Corpus::synthesize(&config).unwrap();
        corpus.verify().unwrap();
    }

    /// Several seeds in a row must all verify: the constructive planting
    /// is not luck-dependent.
    #[test]
    fn many_seeds_verify() {
        for seed in 0..5 {
            let config = SynthesisConfig::builder()
                .training_len(40_000)
                .anomaly_sizes(2..=5)
                .windows(2..=8)
                .background_len(640)
                .plant_repeats(3)
                .seed(seed)
                .build()
                .unwrap();
            let corpus = Corpus::synthesize(&config).unwrap();
            corpus
                .verify()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}

//! Synthetic evaluation data for the `detdiv` reproduction of Tan &
//! Maxion (DSN 2005), §5.3–§5.4.
//!
//! The study's control comes from its data: training data generated from
//! a Markov transition matrix (98 % a deterministic 8-symbol cycle, 2 %
//! rare material from nondeterminism), clean cycle background test data,
//! and a single **minimal foreign sequence** (MFS) anomaly per test
//! stream, injected so that every boundary window is a known sequence.
//!
//! * [`SynthesisConfig`] — the experiment's knobs, defaulting to the
//!   paper's values (1 M elements, alphabet 8, AS 2–9, DW 2–15, 0.5 %
//!   rarity);
//! * [`Corpus::synthesize`] — deterministic generate-and-verify
//!   assembly; every invariant of the paper's injection procedure is
//!   checked programmatically (see DESIGN.md §2.2);
//! * [`InjectedCase`] — one labelled (AS, DW) cell, pluggable into
//!   `detdiv_core::evaluate_case`;
//! * [`Anomaly`] — the synthesized MFS with its planted prefix/suffix
//!   views;
//! * [`save_corpus`] / [`load_corpus`] — the suite as on-disk files
//!   (training stream + per-anomaly test streams + manifest), with
//!   verification on load.
//!
//! ```
//! use detdiv_synth::{Corpus, SynthesisConfig};
//!
//! let config = SynthesisConfig::builder()
//!     .training_len(30_000)
//!     .anomaly_sizes(2..=3)
//!     .windows(2..=4)
//!     .background_len(512)
//!     .build()
//!     .unwrap();
//! let corpus = Corpus::synthesize(&config).unwrap();
//! let anomaly = corpus.anomaly(3).unwrap();
//! assert_eq!(anomaly.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::print_stdout, clippy::print_stderr)]

mod anomaly;
mod config;
mod corpus;
mod error;
mod io;
mod verify;

pub use anomaly::Anomaly;
pub use config::{SynthesisConfig, SynthesisConfigBuilder};
pub use corpus::{Corpus, InjectedCase, NoisyCase};
pub use error::SynthesisError;
pub use io::{load_corpus, save_corpus, CorpusIoError};

//! Error types for the synthesis substrate.

use std::error::Error;
use std::fmt;

/// Errors arising from corpus synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SynthesisError {
    /// A configuration parameter was out of range or inconsistent.
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
    /// No consistent set of minimal foreign sequences could be found
    /// within the retry budget.
    AnomalySearchFailed {
        /// Number of full attempts made.
        attempts: usize,
    },
    /// A post-synthesis invariant check failed (this indicates a bug in
    /// the generator, not bad luck).
    VerificationFailed {
        /// Which invariant failed.
        check: String,
    },
    /// A case was requested outside the synthesized grid.
    UnknownCase {
        /// The requested anomaly size.
        anomaly_size: usize,
        /// The requested detector window.
        window: usize,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::InvalidConfig { reason } => {
                write!(f, "invalid synthesis configuration: {reason}")
            }
            SynthesisError::AnomalySearchFailed { attempts } => write!(
                f,
                "no consistent minimal-foreign-sequence set found after {attempts} attempts"
            ),
            SynthesisError::VerificationFailed { check } => {
                write!(f, "corpus verification failed: {check}")
            }
            SynthesisError::UnknownCase {
                anomaly_size,
                window,
            } => write!(
                f,
                "no synthesized case for anomaly size {anomaly_size}, window {window}"
            ),
        }
    }
}

impl Error for SynthesisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SynthesisError::InvalidConfig {
            reason: "alphabet too small".into(),
        };
        assert!(e.to_string().contains("alphabet too small"));
        let e = SynthesisError::UnknownCase {
            anomaly_size: 9,
            window: 2,
        };
        assert!(e.to_string().contains("anomaly size 9"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<SynthesisError>();
    }
}

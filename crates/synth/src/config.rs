//! Synthesis configuration.
//!
//! Defaults mirror §5.3 of the paper: a training stream of 1,000,000
//! elements over an alphabet of 8, 98 % of which repeats the cycle
//! `1 2 3 4 5 6 7 8` with 2 % rare material from nondeterminism in the
//! generation matrix; minimal foreign sequences of sizes 2–9; detector
//! windows 2–15; and the 0.5 % rare-sequence definition.

use std::ops::RangeInclusive;

use detdiv_sequence::DEFAULT_RARE_THRESHOLD;
use serde::{Deserialize, Serialize};

use crate::error::SynthesisError;

/// Parameters of a synthesized evaluation corpus.
///
/// Construct through [`SynthesisConfig::builder`]; the builder validates
/// cross-parameter consistency.
///
/// # Examples
///
/// ```
/// use detdiv_synth::SynthesisConfig;
///
/// let config = SynthesisConfig::builder()
///     .training_len(50_000)
///     .anomaly_sizes(2..=5)
///     .windows(2..=8)
///     .seed(42)
///     .build()
///     .unwrap();
/// assert_eq!(config.alphabet_size(), 8);
/// assert_eq!(config.max_window(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthesisConfig {
    alphabet_size: u32,
    training_len: usize,
    noise: f64,
    anomaly_min: usize,
    anomaly_max: usize,
    window_min: usize,
    window_max: usize,
    rare_threshold: f64,
    background_len: usize,
    plant_repeats: usize,
    seed: u64,
}

impl SynthesisConfig {
    /// Starts a builder pre-loaded with the paper's parameters.
    pub fn builder() -> SynthesisConfigBuilder {
        SynthesisConfigBuilder::default()
    }

    /// The paper's exact configuration: 1 M training elements, alphabet
    /// 8, anomaly sizes 2–9, windows 2–15.
    ///
    /// # Panics
    ///
    /// Never panics; the default configuration is valid by construction.
    pub fn paper() -> Self {
        SynthesisConfig::builder()
            .build()
            .expect("paper defaults are valid")
    }

    /// Alphabet size (paper: 8).
    pub fn alphabet_size(&self) -> u32 {
        self.alphabet_size
    }

    /// Approximate training-stream length (paper: 1,000,000). The
    /// assembled stream may exceed this by a fraction of a cycle.
    pub fn training_len(&self) -> usize {
        self.training_len
    }

    /// Total escape probability per state in the generation matrix
    /// (paper: 2 % nondeterminism).
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// The anomaly sizes (AS) to synthesize, ascending.
    pub fn anomaly_sizes(&self) -> RangeInclusive<usize> {
        self.anomaly_min..=self.anomaly_max
    }

    /// Smallest anomaly size.
    pub fn min_anomaly(&self) -> usize {
        self.anomaly_min
    }

    /// Largest anomaly size.
    pub fn max_anomaly(&self) -> usize {
        self.anomaly_max
    }

    /// The detector windows (DW) the corpus must support, ascending.
    pub fn windows(&self) -> RangeInclusive<usize> {
        self.window_min..=self.window_max
    }

    /// Smallest supported detector window.
    pub fn min_window(&self) -> usize {
        self.window_min
    }

    /// Largest supported detector window.
    pub fn max_window(&self) -> usize {
        self.window_max
    }

    /// The rare-sequence definition (paper: relative frequency below
    /// 0.5 %).
    pub fn rare_threshold(&self) -> f64 {
        self.rare_threshold
    }

    /// Length of the clean background test stream before injection.
    pub fn background_len(&self) -> usize {
        self.background_len
    }

    /// How many times each anomaly's prefix/suffix context is planted
    /// into the training stream's rare portion.
    pub fn plant_repeats(&self) -> usize {
        self.plant_repeats
    }

    /// Root RNG seed; the corpus is a pure function of the
    /// configuration.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig::paper()
    }
}

/// Builder for [`SynthesisConfig`].
#[derive(Debug, Clone)]
pub struct SynthesisConfigBuilder {
    alphabet_size: u32,
    training_len: usize,
    noise: f64,
    anomaly_sizes: RangeInclusive<usize>,
    windows: RangeInclusive<usize>,
    rare_threshold: f64,
    background_len: usize,
    plant_repeats: usize,
    seed: u64,
}

impl Default for SynthesisConfigBuilder {
    fn default() -> Self {
        SynthesisConfigBuilder {
            alphabet_size: 8,
            training_len: 1_000_000,
            noise: 0.02,
            anomaly_sizes: 2..=9,
            windows: 2..=15,
            rare_threshold: DEFAULT_RARE_THRESHOLD,
            background_len: 4096,
            plant_repeats: 6,
            seed: 2005_0628,
        }
    }
}

impl SynthesisConfigBuilder {
    /// Sets the alphabet size (minimum 6: the synthesis reserves step
    /// classes for the cycle, the natural escapes and the
    /// anomaly-exclusive transitions).
    #[must_use]
    pub fn alphabet_size(mut self, size: u32) -> Self {
        self.alphabet_size = size;
        self
    }

    /// Sets the approximate training-stream length.
    #[must_use]
    pub fn training_len(mut self, len: usize) -> Self {
        self.training_len = len;
        self
    }

    /// Sets the generation matrix's total escape probability per state.
    #[must_use]
    pub fn noise(mut self, noise: f64) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the anomaly sizes to synthesize.
    #[must_use]
    pub fn anomaly_sizes(mut self, sizes: RangeInclusive<usize>) -> Self {
        self.anomaly_sizes = sizes;
        self
    }

    /// Sets the detector windows the corpus must support.
    #[must_use]
    pub fn windows(mut self, windows: RangeInclusive<usize>) -> Self {
        self.windows = windows;
        self
    }

    /// Sets the rare-sequence threshold.
    #[must_use]
    pub fn rare_threshold(mut self, threshold: f64) -> Self {
        self.rare_threshold = threshold;
        self
    }

    /// Sets the background test-stream length.
    #[must_use]
    pub fn background_len(mut self, len: usize) -> Self {
        self.background_len = len;
        self
    }

    /// Sets the plant multiplicity.
    #[must_use]
    pub fn plant_repeats(mut self, repeats: usize) -> Self {
        self.plant_repeats = repeats;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::InvalidConfig`] when parameters are out
    /// of range or mutually inconsistent (see the individual messages).
    pub fn build(self) -> Result<SynthesisConfig, SynthesisError> {
        let err = |reason: &str| {
            Err(SynthesisError::InvalidConfig {
                reason: reason.to_owned(),
            })
        };
        if self.alphabet_size < 6 {
            return err("alphabet size must be at least 6");
        }
        if !(self.noise > 0.0 && self.noise < 0.5) {
            return err("noise must be in (0, 0.5)");
        }
        if !(self.rare_threshold > 0.0 && self.rare_threshold < 1.0) {
            return err("rare threshold must be in (0, 1)");
        }
        let (a_min, a_max) = (*self.anomaly_sizes.start(), *self.anomaly_sizes.end());
        if a_min < 2 || a_min > a_max {
            return err("anomaly sizes must be a non-empty range starting at 2 or above");
        }
        let (w_min, w_max) = (*self.windows.start(), *self.windows.end());
        if w_min < 2 || w_min > w_max {
            return err("windows must be a non-empty range starting at 2 or above");
        }
        if self.plant_repeats < 2 {
            return err("plant repeats must be at least 2");
        }
        let n = self.alphabet_size as usize;
        let plant_block = 4 * (w_max + n) + a_max;
        let plants_total = (a_max - a_min + 1) * self.plant_repeats * 2 * plant_block;
        if self.training_len < plants_total * 2 {
            return err("training length too small for the requested plants; increase training_len or reduce plant_repeats/windows");
        }
        if self.background_len < 8 * (w_max + a_max) {
            return err("background length must be at least 8x (max window + max anomaly)");
        }
        // Planted flanks must remain rare under the configured threshold.
        if (2 * self.plant_repeats + 2) as f64 / self.training_len as f64 >= self.rare_threshold {
            return err("plant repeats too large relative to training length: planted material would not be rare");
        }
        Ok(SynthesisConfig {
            alphabet_size: self.alphabet_size,
            training_len: self.training_len,
            noise: self.noise,
            anomaly_min: a_min,
            anomaly_max: a_max,
            window_min: w_min,
            window_max: w_max,
            rare_threshold: self.rare_threshold,
            background_len: self.background_len,
            plant_repeats: self.plant_repeats,
            seed: self.seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = SynthesisConfig::paper();
        assert_eq!(c.alphabet_size(), 8);
        assert_eq!(c.training_len(), 1_000_000);
        assert_eq!(c.anomaly_sizes(), 2..=9);
        assert_eq!(c.windows(), 2..=15);
        assert!((c.noise() - 0.02).abs() < 1e-12);
        assert!((c.rare_threshold() - 0.005).abs() < 1e-12);
    }

    #[test]
    fn builder_overrides() {
        let c = SynthesisConfig::builder()
            .alphabet_size(10)
            .training_len(60_000)
            .anomaly_sizes(2..=4)
            .windows(2..=6)
            .background_len(1024)
            .plant_repeats(3)
            .noise(0.05)
            .rare_threshold(0.01)
            .seed(9)
            .build()
            .unwrap();
        assert_eq!(c.alphabet_size(), 10);
        assert_eq!(c.training_len(), 60_000);
        assert_eq!(c.max_anomaly(), 4);
        assert_eq!(c.min_window(), 2);
        assert_eq!(c.plant_repeats(), 3);
        assert_eq!(c.seed(), 9);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(SynthesisConfig::builder().alphabet_size(4).build().is_err());
        assert!(SynthesisConfig::builder().noise(0.0).build().is_err());
        assert!(SynthesisConfig::builder().noise(0.7).build().is_err());
        assert!(SynthesisConfig::builder()
            .rare_threshold(0.0)
            .build()
            .is_err());
        assert!(SynthesisConfig::builder()
            .anomaly_sizes(1..=4)
            .build()
            .is_err());
        #[allow(clippy::reversed_empty_ranges)]
        {
            assert!(SynthesisConfig::builder()
                .anomaly_sizes(5..=4)
                .build()
                .is_err());
        }
        assert!(SynthesisConfig::builder().windows(1..=5).build().is_err());
        assert!(SynthesisConfig::builder().plant_repeats(1).build().is_err());
        assert!(SynthesisConfig::builder()
            .training_len(1000)
            .build()
            .is_err());
        assert!(SynthesisConfig::builder()
            .background_len(10)
            .build()
            .is_err());
    }

    #[test]
    fn plants_must_stay_rare() {
        // 2 * 200 + 2 occurrences over 50k windows is 0.8 % > 0.5 %.
        let result = SynthesisConfig::builder()
            .training_len(50_000)
            .anomaly_sizes(2..=3)
            .windows(2..=4)
            .plant_repeats(200)
            .build();
        assert!(matches!(result, Err(SynthesisError::InvalidConfig { .. })));
    }

    #[test]
    fn config_is_default_constructible() {
        assert_eq!(SynthesisConfig::default(), SynthesisConfig::paper());
    }
}

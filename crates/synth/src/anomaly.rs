//! Minimal-foreign-sequence construction (§5.4.2).
//!
//! "Sequences composed by concatenating short, rare sequences from the
//! training trace are likely to be foreign ... It is easy to generate
//! such sequences, and to verify their foreign-ness and minimality
//! characteristics."
//!
//! The generator reserves *step classes* over the cyclic alphabet
//! `0..n`:
//!
//! * step `+1` — the deterministic cycle (98 % of the training data);
//! * steps `+2`, `+3` — the natural escapes supplying the 2 % of rare
//!   material ("a small amount of nondeterminism in the probabilities of
//!   the data generation matrix", §5.3);
//! * steps `+4 .. +(n−1)` — **anomaly-exclusive**: transitions the
//!   generation matrix can never produce. Every anomaly is a walk using
//!   only anomaly-exclusive steps, so its content enters the training
//!   data exclusively through deliberate, counted *plants* of its proper
//!   prefix and suffix — which yields foreignness of the whole,
//!   minimality, and rare-composition by construction (each is still
//!   verified after assembly).
//!
//! Anomalies avoid the symbol `n−1` and never start at `n−2` (the
//! injection context), which — combined with the all-anomaly-exclusive
//! step constraint — confines cross-anomaly contamination to literal
//! substring collisions between anomalies, checked during the search.

use detdiv_sequence::Symbol;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::config::SynthesisConfig;
use crate::error::SynthesisError;

/// A synthesized minimal foreign sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Anomaly {
    symbols: Vec<Symbol>,
}

impl Anomaly {
    pub(crate) fn new(symbols: Vec<Symbol>) -> Self {
        debug_assert!(symbols.len() >= 2);
        Anomaly { symbols }
    }

    /// The anomaly's elements.
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// The anomaly size AS.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Anomalies are at least two elements long by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The proper prefix `a_1 .. a_{AS-1}` planted via the P1 context
    /// block.
    pub fn prefix(&self) -> &[Symbol] {
        &self.symbols[..self.symbols.len() - 1]
    }

    /// The proper suffix `a_2 .. a_AS` planted via the P2 context block.
    pub fn suffix(&self) -> &[Symbol] {
        &self.symbols[1..]
    }
}

impl std::fmt::Display for Anomaly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let parts: Vec<String> = self.symbols.iter().map(|s| s.to_string()).collect();
        write!(f, "[{}]", parts.join(" "))
    }
}

/// Whether `needle` occurs as a contiguous substring of `haystack`.
fn is_substring(needle: &[Symbol], haystack: &[Symbol]) -> bool {
    haystack.len() >= needle.len() && haystack.windows(needle.len()).any(|w| w == needle)
}

/// Draws one candidate anomaly of length `size`.
fn draw_candidate(size: usize, n: u32, rng: &mut SmallRng) -> Vec<Symbol> {
    let inject_after = n - 2;
    let excluded = n - 1;
    let mut out = Vec::with_capacity(size);
    // First element: an anomaly-exclusive step away from the injection
    // context `n-2`, avoiding `n-1`.
    let first = loop {
        let delta = rng.gen_range(4..n);
        let candidate = (inject_after + delta) % n;
        if candidate != excluded {
            break candidate;
        }
    };
    out.push(Symbol::new(first));
    while out.len() < size {
        let prev = out.last().expect("nonempty").id();
        let next = loop {
            let delta = rng.gen_range(4..n);
            let candidate = (prev + delta) % n;
            if candidate != excluded {
                break candidate;
            }
        };
        out.push(Symbol::new(next));
    }
    out
}

/// Searches for a mutually consistent set of anomalies, one per size in
/// the configuration's range.
///
/// Consistency: no anomaly is a contiguous substring of another (which,
/// given the step-class reservation, is the only way one anomaly's
/// planted material could make another non-foreign).
///
/// # Errors
///
/// Returns [`SynthesisError::AnomalySearchFailed`] if no consistent set
/// is found within the retry budget (practically impossible for sane
/// configurations; the branching factor per element is at least 3).
pub(crate) fn search_anomaly_set(
    config: &SynthesisConfig,
    seed: u64,
) -> Result<Vec<Anomaly>, SynthesisError> {
    const MAX_ATTEMPTS: usize = 64;
    let n = config.alphabet_size();
    let sizes: Vec<usize> = config.anomaly_sizes().collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    'attempt: for _ in 0..MAX_ATTEMPTS {
        let candidates: Vec<Vec<Symbol>> = sizes
            .iter()
            .map(|&size| draw_candidate(size, n, &mut rng))
            .collect();
        // Reject sets where any anomaly is contained in another.
        for (i, a) in candidates.iter().enumerate() {
            for (j, b) in candidates.iter().enumerate() {
                if i != j && is_substring(a, b) {
                    continue 'attempt;
                }
            }
        }
        return Ok(candidates.into_iter().map(Anomaly::new).collect());
    }
    Err(SynthesisError::AnomalySearchFailed {
        attempts: MAX_ATTEMPTS,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SynthesisConfig {
        SynthesisConfig::builder()
            .training_len(100_000)
            .build()
            .unwrap()
    }

    #[test]
    fn anomalies_cover_requested_sizes() {
        let set = search_anomaly_set(&config(), 1).unwrap();
        let sizes: Vec<usize> = set.iter().map(Anomaly::len).collect();
        assert_eq!(sizes, (2..=9).collect::<Vec<_>>());
    }

    #[test]
    fn steps_are_anomaly_exclusive() {
        let set = search_anomaly_set(&config(), 2).unwrap();
        for a in &set {
            let syms = a.symbols();
            // First element reachable from 6 only by a reserved step.
            let entry = (syms[0].id() + 8 - 6) % 8;
            assert!(entry >= 4, "entry step {entry} in {a}");
            for w in syms.windows(2) {
                let delta = (w[1].id() + 8 - w[0].id()) % 8;
                assert!(delta >= 4, "step {delta} in {a}");
            }
        }
    }

    #[test]
    fn anomalies_avoid_reserved_symbols() {
        let set = search_anomaly_set(&config(), 3).unwrap();
        for a in &set {
            assert!(a.symbols().iter().all(|s| s.id() != 7), "{a}");
            assert_ne!(a.symbols()[0].id(), 6, "{a}");
        }
    }

    #[test]
    fn no_anomaly_contains_another() {
        let set = search_anomaly_set(&config(), 4).unwrap();
        for (i, a) in set.iter().enumerate() {
            for (j, b) in set.iter().enumerate() {
                if i != j {
                    assert!(!is_substring(a.symbols(), b.symbols()), "{a} inside {b}");
                }
            }
        }
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let a = search_anomaly_set(&config(), 7).unwrap();
        let b = search_anomaly_set(&config(), 7).unwrap();
        let c = search_anomaly_set(&config(), 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn prefix_suffix_views() {
        let a = Anomaly::new(vec![Symbol::new(2), Symbol::new(6), Symbol::new(2)]);
        assert_eq!(a.prefix(), &[Symbol::new(2), Symbol::new(6)]);
        assert_eq!(a.suffix(), &[Symbol::new(6), Symbol::new(2)]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert_eq!(a.to_string(), "[2 6 2]");
    }

    #[test]
    fn substring_detection() {
        let a = [Symbol::new(1), Symbol::new(2)];
        let b = [
            Symbol::new(0),
            Symbol::new(1),
            Symbol::new(2),
            Symbol::new(3),
        ];
        assert!(is_substring(&a, &b));
        assert!(!is_substring(&b, &a));
        let c = [Symbol::new(2), Symbol::new(1)];
        assert!(!is_substring(&c, &b));
    }
}

//! Corpus assembly: the paper's evaluation-data suite (§5.3–§5.4).
//!
//! A [`Corpus`] holds one training stream and one injected test stream
//! per anomaly size, shared across detector windows (the paper
//! replicates the test files per window; the content is identical).
//!
//! Training-stream layout:
//!
//! ```text
//! [natural] [P1(2) P2(2) .. P1(9) P2(9)] [natural] [plants] ... [natural]
//! ```
//!
//! *Natural* segments come from the paper's generation matrix — the
//! 8-cycle with 2 % escape nondeterminism. *Plant* blocks P1/P2 embed
//! each anomaly's proper prefix/suffix in full cycle context, realising
//! the rare material that makes the anomaly a *minimal* foreign sequence
//! and makes every boundary window of the injection a known sequence.
//! All blocks start at symbol 0 and end at symbol `n−1`, so block
//! junctions are ordinary cycle transitions and introduce no spurious
//! anomalies.

use std::collections::BTreeMap;

use detdiv_core::LabeledCase;
use detdiv_markov::TransitionMatrix;
use detdiv_sequence::{Alphabet, Symbol};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::anomaly::{search_anomaly_set, Anomaly};
use crate::config::SynthesisConfig;
use crate::error::SynthesisError;
use crate::verify::verify_corpus;

/// One injected test stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct TestStream {
    pub(crate) stream: Vec<Symbol>,
    pub(crate) injection_position: usize,
}

/// A complete, verified evaluation corpus.
///
/// # Examples
///
/// ```
/// use detdiv_synth::{Corpus, SynthesisConfig};
///
/// let config = SynthesisConfig::builder()
///     .training_len(30_000)
///     .anomaly_sizes(2..=3)
///     .windows(2..=4)
///     .background_len(512)
///     .seed(5)
///     .build()
///     .unwrap();
/// let corpus = Corpus::synthesize(&config).unwrap();
/// assert_eq!(corpus.alphabet().size(), 8);
/// let case = corpus.case(3, 4).unwrap();
/// assert_eq!(case.anomaly_size(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Corpus {
    config: SynthesisConfig,
    alphabet: Alphabet,
    training: Vec<Symbol>,
    anomalies: BTreeMap<usize, Anomaly>,
    tests: BTreeMap<usize, TestStream>,
}

impl Corpus {
    /// Synthesizes and verifies a corpus for `config`.
    ///
    /// The construction is deterministic in `config` (including its
    /// seed). Every invariant of DESIGN.md §2.2 is checked before the
    /// corpus is returned; on an (unlikely) anomaly-set collision the
    /// synthesis retries with a derived seed.
    ///
    /// # Errors
    ///
    /// * [`SynthesisError::AnomalySearchFailed`] if no consistent
    ///   anomaly set exists within the retry budget;
    /// * [`SynthesisError::VerificationFailed`] if an invariant check
    ///   fails on every attempt (indicates a generator bug).
    pub fn synthesize(config: &SynthesisConfig) -> Result<Self, SynthesisError> {
        const ATTEMPTS: u64 = 8;
        let _span = detdiv_obs::span!(
            "corpus_synthesize",
            training_len = config.training_len(),
            seed = config.seed(),
        );
        let mut last_err = SynthesisError::AnomalySearchFailed { attempts: 0 };
        for attempt in 0..ATTEMPTS {
            detdiv_obs::incr_counter("synth/attempts", 1);
            let seed = config
                .seed()
                .wrapping_add(attempt.wrapping_mul(0x9E37_79B9));
            let anomalies = {
                let _search = detdiv_obs::span!("search_anomaly_set");
                search_anomaly_set(config, seed)?
            };
            detdiv_obs::incr_counter("synth/anomalies_found", anomalies.len() as u64);
            let corpus = {
                let _assemble = detdiv_obs::span!("assemble");
                Self::assemble(config, anomalies, seed)
            };
            let verdict = {
                let _verify = detdiv_obs::span!("verify");
                verify_corpus(&corpus)
            };
            match verdict {
                Ok(()) => {
                    detdiv_obs::incr_counter("synth/corpora_built", 1);
                    detdiv_obs::incr_counter(
                        "synth/training_elements",
                        corpus.training.len() as u64,
                    );
                    detdiv_obs::debug!(
                        "corpus synthesized",
                        attempt = attempt,
                        training_elements = corpus.training.len(),
                        anomalies = corpus.anomalies.len(),
                    );
                    return Ok(corpus);
                }
                Err(e) => {
                    detdiv_obs::incr_counter("synth/verify_failures", 1);
                    detdiv_obs::warn!("corpus verification failed; retrying", attempt = attempt);
                    last_err = e;
                }
            }
        }
        Err(last_err)
    }

    fn assemble(config: &SynthesisConfig, anomalies: Vec<Anomaly>, seed: u64) -> Self {
        let n = config.alphabet_size();
        let alphabet = Alphabet::new(n);
        let ctx_len = config.max_window() + n as usize + 2;

        // Plant blocks for every anomaly.
        let rounds = config.plant_repeats();
        let mut plant_round: Vec<Symbol> = Vec::new();
        for anomaly in &anomalies {
            plant_round.extend(plant_p1(anomaly, n, ctx_len));
            plant_round.extend(plant_p2(anomaly, n, ctx_len));
        }
        let plants_total = plant_round.len() * rounds;

        // Natural segments fill the remaining budget.
        let matrix = escape_matrix(alphabet, config.noise());
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xD1F1_C0DE);
        let natural_total = config.training_len().saturating_sub(plants_total);
        let chunk_len = (natural_total / (rounds + 1)).max(4 * n as usize);

        let mut training = Vec::with_capacity(config.training_len() + chunk_len);
        training.extend(natural_chunk(&matrix, chunk_len, &mut rng));
        for _ in 0..rounds {
            training.extend_from_slice(&plant_round);
            training.extend(natural_chunk(&matrix, chunk_len, &mut rng));
        }

        // Test streams: clean cycle background with one injected anomaly.
        let background = cycle_stream(n, config.background_len());
        let mut tests = BTreeMap::new();
        let mut anomaly_map = BTreeMap::new();
        for anomaly in anomalies {
            let p = injection_position(n, config.background_len());
            let mut stream = Vec::with_capacity(background.len() + anomaly.len());
            stream.extend_from_slice(&background[..p]);
            stream.extend_from_slice(anomaly.symbols());
            stream.extend_from_slice(&background[p..]);
            tests.insert(
                anomaly.len(),
                TestStream {
                    stream,
                    injection_position: p,
                },
            );
            anomaly_map.insert(anomaly.len(), anomaly);
        }

        Corpus {
            config: config.clone(),
            alphabet,
            training,
            anomalies: anomaly_map,
            tests,
        }
    }

    /// The configuration this corpus was synthesized from.
    pub fn config(&self) -> &SynthesisConfig {
        &self.config
    }

    /// The alphabet of the corpus.
    pub fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    /// The training (normal) stream.
    pub fn training(&self) -> &[Symbol] {
        &self.training
    }

    /// The anomaly synthesized for `anomaly_size`, if in range.
    pub fn anomaly(&self, anomaly_size: usize) -> Option<&Anomaly> {
        self.anomalies.get(&anomaly_size)
    }

    /// All synthesized anomalies, ascending by size.
    pub fn anomalies(&self) -> impl Iterator<Item = &Anomaly> {
        self.anomalies.values()
    }

    /// The labelled case for one (anomaly size, detector window) cell.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::UnknownCase`] if either coordinate is
    /// outside the synthesized grid.
    pub fn case(
        &self,
        anomaly_size: usize,
        window: usize,
    ) -> Result<InjectedCase<'_>, SynthesisError> {
        if !self.tests.contains_key(&anomaly_size) || !self.config.windows().contains(&window) {
            return Err(SynthesisError::UnknownCase {
                anomaly_size,
                window,
            });
        }
        Ok(InjectedCase {
            corpus: self,
            anomaly_size,
            window,
        })
    }

    /// Iterates over every (anomaly size, detector window) case of the
    /// grid, anomaly-major.
    pub fn cases(&self) -> impl Iterator<Item = InjectedCase<'_>> + '_ {
        self.tests.keys().flat_map(move |&anomaly_size| {
            self.config.windows().map(move |window| InjectedCase {
                corpus: self,
                anomaly_size,
                window,
            })
        })
    }

    /// Re-runs the full invariant verification (DESIGN.md §2.2).
    ///
    /// [`Corpus::synthesize`] already verified the corpus; this is
    /// exposed for audits and tests.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::VerificationFailed`] naming the first
    /// violated invariant.
    pub fn verify(&self) -> Result<(), SynthesisError> {
        verify_corpus(self)
    }

    pub(crate) fn test_stream(&self, anomaly_size: usize) -> Option<&TestStream> {
        self.tests.get(&anomaly_size)
    }

    /// Reassembles a corpus from externally supplied parts (a persisted
    /// suite, see the `io` module), re-running the full invariant
    /// verification.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::VerificationFailed`] if the parts do
    /// not satisfy the corpus invariants — e.g. the training stream was
    /// tampered with, a test stream does not contain its declared
    /// anomaly, or an anomaly is no longer minimal-foreign.
    pub(crate) fn from_parts(
        config: SynthesisConfig,
        training: Vec<Symbol>,
        parts: Vec<(Anomaly, Vec<Symbol>, usize)>,
    ) -> Result<Self, SynthesisError> {
        let alphabet = Alphabet::new(config.alphabet_size());
        let mut anomalies = BTreeMap::new();
        let mut tests = BTreeMap::new();
        for (anomaly, stream, injection_position) in parts {
            // The stream must embed the declared anomaly at the declared
            // position.
            let size = anomaly.len();
            if injection_position + size > stream.len()
                || &stream[injection_position..injection_position + size] != anomaly.symbols()
            {
                return Err(SynthesisError::VerificationFailed {
                    check: format!(
                        "test stream for size {size} does not contain its anomaly at position {injection_position}"
                    ),
                });
            }
            anomalies.insert(size, anomaly);
            tests.insert(
                size,
                TestStream {
                    stream,
                    injection_position,
                },
            );
        }
        let corpus = Corpus {
            config,
            alphabet,
            training,
            anomalies,
            tests,
        };
        verify_corpus(&corpus)?;
        Ok(corpus)
    }

    /// Builds a *noisy* labelled case: the anomaly injected into a
    /// background generated from the same matrix as the training data —
    /// escapes and all — rather than into the clean cycle.
    ///
    /// Noisy backgrounds are the false-alarm workload of the paper's §7
    /// combination analysis: their rare (but known) sequences provoke
    /// alarms from probability-based detectors while remaining normal to
    /// Stide. The anomaly is injected at a clean-cycle stretch of the
    /// noisy stream so that boundary windows remain known sequences and
    /// the hit/false-alarm accounting stays unambiguous.
    ///
    /// # Errors
    ///
    /// * [`SynthesisError::UnknownCase`] if `anomaly_size` was not
    ///   synthesized;
    /// * [`SynthesisError::VerificationFailed`] if no clean stretch long
    ///   enough for injection exists in the generated background (raise
    ///   `len` or lower the noise).
    pub fn noisy_case(
        &self,
        anomaly_size: usize,
        len: usize,
        seed: u64,
    ) -> Result<NoisyCase<'_>, SynthesisError> {
        let anomaly = self
            .anomaly(anomaly_size)
            .ok_or(SynthesisError::UnknownCase {
                anomaly_size,
                window: self.config.min_window(),
            })?;
        let n = self.alphabet.size();
        let matrix = escape_matrix(self.alphabet, self.config.noise());
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x0B5E_55ED);
        let background = matrix.generate(Symbol::new(0), len, &mut rng);

        // Find an injection point after the context symbol n-2 whose
        // surrounding `margin` elements are pure cycle.
        let margin = self.config.max_window() + anomaly_size + 1;
        let is_cycle_step = |i: usize| (background[i].id() + 1) % n == background[i + 1].id();
        let mut position = None;
        let mut candidates: Vec<usize> = (margin..len.saturating_sub(margin)).collect();
        // Prefer positions near the middle.
        candidates.sort_by_key(|&p| (p as isize - (len / 2) as isize).unsigned_abs());
        'outer: for p in candidates {
            if background[p - 1].id() != n - 2 {
                continue;
            }
            for i in (p - margin)..(p + margin - 1) {
                if !is_cycle_step(i) {
                    continue 'outer;
                }
            }
            position = Some(p);
            break;
        }
        let p = position.ok_or_else(|| SynthesisError::VerificationFailed {
            check: format!(
                "no clean injection stretch of margin {margin} in a noisy background of length {len}"
            ),
        })?;
        let mut stream = Vec::with_capacity(len + anomaly_size);
        stream.extend_from_slice(&background[..p]);
        stream.extend_from_slice(anomaly.symbols());
        stream.extend_from_slice(&background[p..]);
        Ok(NoisyCase {
            corpus: self,
            stream,
            injection_position: p,
            anomaly_size,
        })
    }
}

/// A labelled case whose background is noisy (generated from the
/// training matrix) rather than the clean cycle. See
/// [`Corpus::noisy_case`].
#[derive(Debug, Clone)]
pub struct NoisyCase<'a> {
    corpus: &'a Corpus,
    stream: Vec<Symbol>,
    injection_position: usize,
    anomaly_size: usize,
}

impl NoisyCase<'_> {
    /// The anomaly size AS of this case.
    pub fn anomaly_size(&self) -> usize {
        self.anomaly_size
    }
}

impl LabeledCase for NoisyCase<'_> {
    fn training(&self) -> &[Symbol] {
        &self.corpus.training
    }

    fn test_stream(&self) -> &[Symbol] {
        &self.stream
    }

    fn injection_position(&self) -> usize {
        self.injection_position
    }

    fn anomaly_len(&self) -> usize {
        self.anomaly_size
    }
}

/// One labelled (anomaly size, detector window) evaluation case,
/// borrowing its streams from the corpus.
#[derive(Debug, Clone, Copy)]
pub struct InjectedCase<'a> {
    corpus: &'a Corpus,
    anomaly_size: usize,
    window: usize,
}

impl<'a> InjectedCase<'a> {
    /// The anomaly size AS of this case.
    pub fn anomaly_size(&self) -> usize {
        self.anomaly_size
    }

    /// The detector window DW this case is evaluated at.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The injected anomaly.
    pub fn anomaly(&self) -> &'a Anomaly {
        self.corpus
            .anomaly(self.anomaly_size)
            .expect("case exists only for synthesized sizes")
    }

    /// The corpus this case belongs to.
    pub fn corpus(&self) -> &'a Corpus {
        self.corpus
    }
}

impl LabeledCase for InjectedCase<'_> {
    fn training(&self) -> &[Symbol] {
        &self.corpus.training
    }

    fn test_stream(&self) -> &[Symbol] {
        &self
            .corpus
            .tests
            .get(&self.anomaly_size)
            .expect("case exists only for synthesized sizes")
            .stream
    }

    fn injection_position(&self) -> usize {
        self.corpus
            .tests
            .get(&self.anomaly_size)
            .expect("case exists only for synthesized sizes")
            .injection_position
    }

    fn anomaly_len(&self) -> usize {
        self.anomaly_size
    }
}

/// The generation matrix: cycle successor with probability `1 − noise`,
/// escapes `+2` and `+3` with probability `noise / 2` each.
pub(crate) fn escape_matrix(alphabet: Alphabet, noise: f64) -> TransitionMatrix {
    let n = alphabet.len();
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|from| {
            let mut row = vec![0.0; n];
            row[(from + 1) % n] = 1.0 - noise;
            row[(from + 2) % n] = noise / 2.0;
            row[(from + 3) % n] += noise / 2.0;
            row
        })
        .collect();
    TransitionMatrix::from_rows(alphabet, &rows).expect("rows are stochastic by construction")
}

/// A pure cycle stream `0, 1, .., n−1, 0, ..` of length `len`.
pub(crate) fn cycle_stream(n: u32, len: usize) -> Vec<Symbol> {
    (0..len)
        .map(|i| Symbol::new((i % n as usize) as u32))
        .collect()
}

/// A cycle run starting at `start`, at least `min_len` long, ending at
/// the first occurrence of `end` thereafter.
fn cycle_run(n: u32, start: u32, end: u32, min_len: usize) -> Vec<Symbol> {
    let mut out = Vec::with_capacity(min_len + n as usize);
    let mut s = start;
    loop {
        out.push(Symbol::new(s));
        if out.len() >= min_len && s == end {
            return out;
        }
        s = (s + 1) % n;
    }
}

/// P1: the anomaly's proper prefix embedded in cycle context ending at
/// the injection symbol `n−2`, continued with the cycle from the
/// prefix's successor.
fn plant_p1(anomaly: &Anomaly, n: u32, ctx_len: usize) -> Vec<Symbol> {
    let mut block = cycle_run(n, 0, n - 2, ctx_len);
    block.extend_from_slice(anomaly.prefix());
    let last = anomaly.prefix().last().expect("prefix nonempty").id();
    block.extend(cycle_run(n, (last + 1) % n, n - 1, ctx_len));
    block
}

/// P2: the anomaly's proper suffix embedded in the same entry context,
/// continued with exactly the background the test stream resumes with
/// (`n−1, 0, 1, ..`).
fn plant_p2(anomaly: &Anomaly, n: u32, ctx_len: usize) -> Vec<Symbol> {
    let mut block = cycle_run(n, 0, n - 2, ctx_len);
    block.extend_from_slice(anomaly.suffix());
    block.extend(cycle_run(n, n - 1, n - 1, ctx_len));
    block
}

/// A natural segment from the generation matrix, trimmed to end at
/// `n−1` so the next block's leading 0 continues the cycle.
fn natural_chunk(matrix: &TransitionMatrix, len: usize, rng: &mut SmallRng) -> Vec<Symbol> {
    let n = matrix.alphabet().size();
    let mut chunk = matrix.generate(Symbol::new(0), len.max(2 * n as usize), rng);
    match chunk.iter().rposition(|s| s.id() == n - 1) {
        Some(i) => chunk.truncate(i + 1),
        None => {
            // Astronomically unlikely; complete the cycle by hand.
            let last = chunk.last().expect("chunk nonempty").id();
            chunk.extend(cycle_run(n, (last + 1) % n, n - 1, 1));
        }
    }
    chunk
}

/// The injection position: the first index at or beyond the middle of
/// the background whose predecessor is the symbol `n−2`.
fn injection_position(n: u32, background_len: usize) -> usize {
    let half = background_len / 2;
    let n = n as usize;
    // Positions p with background[p-1] = n-2 satisfy p ≡ n-1 (mod n).
    let mut p = half - (half % n) + (n - 1);
    if p < half {
        p += n;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SynthesisConfig {
        SynthesisConfig::builder()
            .training_len(30_000)
            .anomaly_sizes(2..=4)
            .windows(2..=6)
            .background_len(512)
            .plant_repeats(4)
            .seed(11)
            .build()
            .unwrap()
    }

    #[test]
    fn cycle_run_boundaries() {
        let run = cycle_run(8, 0, 6, 10);
        assert_eq!(run[0], Symbol::new(0));
        assert_eq!(*run.last().unwrap(), Symbol::new(6));
        assert!(run.len() >= 10);
        // Consecutive elements follow the cycle.
        for w in run.windows(2) {
            assert_eq!((w[0].id() + 1) % 8, w[1].id());
        }
        // Degenerate: already at end with min_len 1.
        assert_eq!(cycle_run(8, 3, 3, 1), vec![Symbol::new(3)]);
    }

    #[test]
    fn escape_matrix_is_stochastic_and_restricted() {
        let m = escape_matrix(Alphabet::new(8), 0.02);
        for from in 0..8u32 {
            let row = m.row(Symbol::new(from));
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            // Reserved steps +4..+7 are unreachable.
            for delta in 4..8u32 {
                assert_eq!(
                    m.probability(Symbol::new(from), Symbol::new((from + delta) % 8)),
                    0.0
                );
            }
        }
    }

    #[test]
    fn injection_position_follows_the_context_symbol() {
        for len in [512usize, 1000, 4096] {
            let p = injection_position(8, len);
            assert!(p >= len / 2);
            assert_eq!((p - 1) % 8, 6); // predecessor is symbol 6
            assert!(p < len);
        }
    }

    #[test]
    fn synthesized_corpus_passes_verification() {
        let corpus = Corpus::synthesize(&small_config()).unwrap();
        corpus.verify().unwrap();
    }

    #[test]
    fn corpus_shape_matches_config() {
        let config = small_config();
        let corpus = Corpus::synthesize(&config).unwrap();
        assert!(corpus.training().len() >= config.training_len() * 9 / 10);
        assert_eq!(corpus.anomalies().count(), 3);
        for anomaly_size in 2..=4usize {
            let case = corpus.case(anomaly_size, 2).unwrap();
            assert_eq!(case.anomaly_len(), anomaly_size);
            assert_eq!(
                case.test_stream().len(),
                config.background_len() + anomaly_size
            );
            let p = case.injection_position();
            assert_eq!(
                &case.test_stream()[p..p + anomaly_size],
                corpus.anomaly(anomaly_size).unwrap().symbols()
            );
        }
    }

    #[test]
    fn cases_iterates_full_grid() {
        let corpus = Corpus::synthesize(&small_config()).unwrap();
        let cases: Vec<(usize, usize)> = corpus
            .cases()
            .map(|c| (c.anomaly_size(), c.window()))
            .collect();
        assert_eq!(cases.len(), 3 * 5);
        assert!(cases.contains(&(2, 2)));
        assert!(cases.contains(&(4, 6)));
    }

    #[test]
    fn unknown_cases_are_rejected() {
        let corpus = Corpus::synthesize(&small_config()).unwrap();
        assert!(matches!(
            corpus.case(9, 2),
            Err(SynthesisError::UnknownCase { .. })
        ));
        assert!(matches!(
            corpus.case(2, 99),
            Err(SynthesisError::UnknownCase { .. })
        ));
    }

    #[test]
    fn synthesis_is_deterministic() {
        let config = small_config();
        let a = Corpus::synthesize(&config).unwrap();
        let b = Corpus::synthesize(&config).unwrap();
        assert_eq!(a.training(), b.training());
        assert_eq!(
            a.anomaly(3).unwrap().symbols(),
            b.anomaly(3).unwrap().symbols()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let mut builder_a = small_config();
        let b_config = SynthesisConfig::builder()
            .training_len(30_000)
            .anomaly_sizes(2..=4)
            .windows(2..=6)
            .background_len(512)
            .plant_repeats(4)
            .seed(12)
            .build()
            .unwrap();
        let a = Corpus::synthesize(&builder_a).unwrap();
        let b = Corpus::synthesize(&b_config).unwrap();
        builder_a = a.config().clone();
        assert_ne!(builder_a.seed(), b_config.seed());
        assert_ne!(a.training(), b.training());
    }
}

#[cfg(test)]
mod noisy_tests {
    use super::*;
    use crate::config::SynthesisConfig;
    use detdiv_core::LabeledCase;

    #[test]
    fn noisy_case_injects_at_clean_stretch() {
        let config = SynthesisConfig::builder()
            .training_len(30_000)
            .anomaly_sizes(2..=4)
            .windows(2..=6)
            .background_len(512)
            .plant_repeats(4)
            .seed(21)
            .build()
            .unwrap();
        let corpus = Corpus::synthesize(&config).unwrap();
        let case = corpus.noisy_case(3, 4096, 9).unwrap();
        let p = case.injection_position();
        let stream = case.test_stream();
        assert_eq!(&stream[p..p + 3], corpus.anomaly(3).unwrap().symbols());
        assert_eq!(stream[p - 1].id(), 6);
        // The surrounding margin is pure cycle.
        let margin = config.max_window() + 3 + 1;
        for i in (p - margin)..(p - 1) {
            assert_eq!(
                (stream[i].id() + 1) % 8,
                stream[i + 1].id(),
                "pre-margin at {i}"
            );
        }
        for i in (p + 3)..(p + 3 + margin - 2) {
            assert_eq!(
                (stream[i].id() + 1) % 8,
                stream[i + 1].id(),
                "post-margin at {i}"
            );
        }
        // The noisy background genuinely contains escapes somewhere.
        let escapes = stream
            .windows(2)
            .filter(|w| (w[0].id() + 1) % 8 != w[1].id())
            .count();
        assert!(
            escapes > 10,
            "expected noisy background, found {escapes} non-cycle steps"
        );
    }

    #[test]
    fn noisy_case_unknown_size_rejected() {
        let config = SynthesisConfig::builder()
            .training_len(30_000)
            .anomaly_sizes(2..=3)
            .windows(2..=4)
            .background_len(512)
            .plant_repeats(4)
            .build()
            .unwrap();
        let corpus = Corpus::synthesize(&config).unwrap();
        assert!(matches!(
            corpus.noisy_case(9, 2048, 1),
            Err(SynthesisError::UnknownCase { .. })
        ));
    }
}

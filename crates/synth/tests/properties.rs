//! Property tests for the synthesis invariants — the paper's §5.4
//! requirements, asserted for arbitrary seeds and grid shapes.

use detdiv_core::LabeledCase;
use detdiv_sequence::StreamProfile;
use detdiv_synth::{Corpus, SynthesisConfig};
use proptest::prelude::*;

fn build(seed: u64, a_max: usize, w_max: usize) -> Corpus {
    let config = SynthesisConfig::builder()
        .training_len(40_000)
        .anomaly_sizes(2..=a_max)
        .windows(2..=w_max)
        .background_len(768)
        .plant_repeats(3)
        .seed(seed)
        .build()
        .expect("valid config");
    Corpus::synthesize(&config).expect("synthesis succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every anomaly of every corpus is a minimal foreign sequence
    /// composed of rare subsequences — the paper's §5.1 definition, for
    /// arbitrary seeds and grid shapes.
    #[test]
    fn anomalies_are_rare_composed_mfs(seed in 0u64..10_000, a_max in 3usize..6, w_max in 4usize..8) {
        let corpus = build(seed, a_max, w_max);
        let profile = StreamProfile::build(
            corpus.training(),
            corpus.config().max_window().max(corpus.config().max_anomaly()),
        )
        .unwrap();
        for anomaly in corpus.anomalies() {
            prop_assert!(profile.is_minimal_foreign(anomaly.symbols()), "{anomaly}");
            prop_assert!(
                profile.is_rare_composed_mfs(anomaly.symbols(), corpus.config().rare_threshold()),
                "{anomaly}"
            );
        }
    }

    /// The §5.4.2 injection requirement: every test-stream window that
    /// does not contain the whole anomaly exists in the training data;
    /// every window that does is foreign.
    #[test]
    fn window_taxonomy_holds(seed in 0u64..10_000) {
        let corpus = build(seed, 4, 6);
        let profile = StreamProfile::build(corpus.training(), 6).unwrap();
        for case in corpus.cases() {
            let (dw, asize) = (case.window(), case.anomaly_size());
            let p = case.injection_position();
            for (start, w) in case.test_stream().windows(dw).enumerate() {
                let contains = start <= p && start + dw >= p + asize;
                prop_assert_eq!(
                    profile.is_foreign(w),
                    contains,
                    "AS {} DW {} window {}",
                    asize,
                    dw,
                    start
                );
            }
        }
    }

    /// The training stream has the paper's gross composition: cycle
    /// transitions overwhelmingly dominate (≈98 % plus plant overhead).
    #[test]
    fn training_is_mostly_cycle(seed in 0u64..10_000) {
        let corpus = build(seed, 4, 6);
        let n = corpus.alphabet().size();
        let train = corpus.training();
        let cycle_steps = train
            .windows(2)
            .filter(|w| (w[0].id() + 1) % n == w[1].id())
            .count();
        let frac = cycle_steps as f64 / (train.len() - 1) as f64;
        prop_assert!(frac > 0.93, "cycle fraction {frac}");
        prop_assert!(frac < 0.999, "nondeterminism missing: {frac}");
    }

    /// Test backgrounds are clean: outside the anomaly, the stream is
    /// the pure cycle.
    #[test]
    fn backgrounds_are_clean(seed in 0u64..10_000) {
        let corpus = build(seed, 3, 5);
        for case in corpus.cases() {
            let stream = case.test_stream();
            let n = corpus.alphabet().size();
            let p = case.injection_position();
            let asize = case.anomaly_size();
            for (i, w) in stream.windows(2).enumerate() {
                // Steps wholly before or after the anomaly follow the cycle.
                if i + 1 < p || i >= p + asize {
                    prop_assert_eq!((w[0].id() + 1) % n, w[1].id(), "step at {}", i);
                }
            }
        }
    }
}

//! Cold-stream hibernation: an append-only checksummed segment file
//! plus an in-memory offset index.
//!
//! Each spilled stream is one line in the [`detdiv_resil`] journal wire
//! format (`<fnv1a-hex-16> <payload>`). The payload is opaque to this
//! crate — the serve layer spills its own serialized stream lines — so
//! the store is a generic keyed spill area. Re-spilling a key appends a
//! fresh record and re-points the index; superseded records become
//! garbage that the (session-scoped) segment never compacts, which is
//! fine for a file whose lifetime is one service run.
//!
//! A recall that fails its checksum returns `Err`: the caller treats
//! the stream as a cold start (the same degrade-don't-panic contract as
//! snapshot recovery).

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use detdiv_resil::checksum_line;

/// An open hibernation segment.
#[derive(Debug)]
pub struct HibernationStore {
    file: File,
    path: PathBuf,
    /// Stream hash → (byte offset of the line, line length sans `\n`).
    index: HashMap<u64, (u64, u32)>,
    end: u64,
    spilled: u64,
    recalled: u64,
}

impl HibernationStore {
    /// Creates (truncating any previous segment) the store at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file creation failures.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<HibernationStore> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(HibernationStore {
            file,
            path,
            index: HashMap::new(),
            end: 0,
            spilled: 0,
            recalled: 0,
        })
    }

    /// The segment path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Streams currently hibernated.
    pub fn resident(&self) -> usize {
        self.index.len()
    }

    /// Total spill operations.
    pub fn spilled(&self) -> u64 {
        self.spilled
    }

    /// Total successful recalls.
    pub fn recalled(&self) -> u64 {
        self.recalled
    }

    /// Whether `hash` is hibernated here.
    pub fn contains(&self, hash: u64) -> bool {
        self.index.contains_key(&hash)
    }

    /// Hibernated stream hashes, sorted (deterministic iteration for
    /// snapshot inclusion).
    pub fn hashes(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self.index.keys().copied().collect();
        out.sort_unstable();
        out
    }

    /// Spills `payload` for `hash`, superseding any previous record.
    ///
    /// # Errors
    ///
    /// Propagates write failures; the index is only re-pointed after a
    /// successful write, so a failed spill leaves any previous record
    /// recallable.
    pub fn spill(&mut self, hash: u64, payload: &str) -> std::io::Result<()> {
        debug_assert!(!payload.contains('\n'), "payloads are single lines");
        let line = checksum_line(payload);
        self.file.seek(SeekFrom::Start(self.end))?;
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.index.insert(hash, (self.end, line.len() as u32));
        self.end += line.len() as u64 + 1;
        self.spilled += 1;
        Ok(())
    }

    fn read_at(&mut self, offset: u64, len: u32) -> std::io::Result<String> {
        self.file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len as usize];
        self.file.read_exact(&mut buf)?;
        let line = String::from_utf8(buf).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "non-utf8 segment record")
        })?;
        let Some((_, payload)) = line.split_once(' ') else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "malformed segment record",
            ));
        };
        if checksum_line(payload) != line {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "segment record failed its checksum",
            ));
        }
        Ok(payload.to_owned())
    }

    /// Reads the payload for `hash` without waking it (snapshot
    /// inclusion); `None` when not hibernated.
    ///
    /// # Errors
    ///
    /// I/O failure or checksum mismatch.
    pub fn peek(&mut self, hash: u64) -> std::io::Result<Option<String>> {
        match self.index.get(&hash).copied() {
            None => Ok(None),
            Some((offset, len)) => self.read_at(offset, len).map(Some),
        }
    }

    /// Wakes `hash`: returns its payload and removes it from the
    /// index. A checksum failure also removes the entry (the record is
    /// unusable; the stream restarts cold) before returning the error.
    ///
    /// # Errors
    ///
    /// I/O failure or checksum mismatch.
    pub fn recall(&mut self, hash: u64) -> std::io::Result<Option<String>> {
        let Some((offset, len)) = self.index.get(&hash).copied() else {
            return Ok(None);
        };
        self.index.remove(&hash);
        let payload = self.read_at(offset, len)?;
        self.recalled += 1;
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_segment(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("detdiv-guard-{name}-{}.seg", std::process::id()));
        p
    }

    #[test]
    fn spill_recall_round_trips_and_clears_the_index() {
        let path = temp_segment("roundtrip");
        let mut store = HibernationStore::create(&path).unwrap();
        store.spill(7, "stream 0007 esc=0 t1=ab slots=0").unwrap();
        store.spill(9, "stream 0009 esc=1 t1=- slots=0").unwrap();
        assert_eq!(store.resident(), 2);
        assert!(store.contains(7));
        assert_eq!(store.hashes(), vec![7, 9]);
        assert_eq!(
            store.recall(7).unwrap().as_deref(),
            Some("stream 0007 esc=0 t1=ab slots=0")
        );
        assert!(!store.contains(7));
        assert_eq!(store.recall(7).unwrap(), None, "recall is consuming");
        assert_eq!(store.recalled(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn respill_supersedes_and_peek_is_non_consuming() {
        let path = temp_segment("respill");
        let mut store = HibernationStore::create(&path).unwrap();
        store.spill(1, "old payload").unwrap();
        store.spill(1, "new payload").unwrap();
        assert_eq!(store.resident(), 1);
        assert_eq!(store.peek(1).unwrap().as_deref(), Some("new payload"));
        assert_eq!(store.peek(1).unwrap().as_deref(), Some("new payload"));
        assert_eq!(store.recall(1).unwrap().as_deref(), Some("new payload"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupted_record_errors_and_drops_the_entry() {
        let path = temp_segment("corrupt");
        let mut store = HibernationStore::create(&path).unwrap();
        store.spill(5, "precious state").unwrap();
        // Flip a payload byte behind the store's back.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] = bytes[last].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.recall(5).is_err(), "checksum must catch the flip");
        assert!(!store.contains(5), "the unusable entry is dropped");
        let _ = std::fs::remove_file(&path);
    }
}

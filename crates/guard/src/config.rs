//! Guard configuration: thresholds, budgets, and the env-var knobs.

use std::path::PathBuf;
use std::time::Duration;

use crate::breaker::BreakerConfig;

/// Environment variable naming the resident-state byte budget
/// (hibernation trigger).
pub const ENV_GUARD_BYTES: &str = "DETDIV_GUARD_BYTES";

/// Environment variable naming the hibernation segment directory.
pub const ENV_GUARD_DIR: &str = "DETDIV_GUARD_DIR";

/// Shape of the guard subsystem attached to an ingest service.
///
/// Every threshold feeds the pure pressure classification
/// ([`crate::PressureSample::classify`]); nothing here introduces
/// wall-clock nondeterminism except [`drain_deadline`], which is `None`
/// by default and documented as chaos-only (a tripped watchdog changes
/// the ladder, so deterministic CI comparisons leave it off).
///
/// [`drain_deadline`]: GuardConfig::drain_deadline
#[derive(Debug, Clone, PartialEq)]
pub struct GuardConfig {
    /// Total resident detector-state byte budget across all shards;
    /// `None` disables budget pressure and hibernation-by-budget.
    pub budget_bytes: Option<u64>,
    /// Directory for hibernation segment files; `None` disables
    /// hibernation entirely (budget overruns then only raise pressure).
    pub spill_dir: Option<PathBuf>,
    /// Queue fill fraction at or above which pressure is `Elevated`
    /// (ladder target: gated-only).
    pub gate_only_at: f64,
    /// Queue fill fraction at or above which pressure is `High`
    /// (ladder target: tier1-only).
    pub tier1_only_at: f64,
    /// Queue fill fraction at or above which pressure is `Critical`
    /// (ladder target: shedding).
    pub shed_at: f64,
    /// Consecutive calm drain cycles required before the ladder steps
    /// down one rung (hysteresis).
    pub cool_cycles: u32,
    /// The tier-2 escalation circuit breaker.
    pub breaker: BreakerConfig,
    /// Per-shard drain wall-clock deadline for the stuck-shard
    /// watchdog. `None` (the default) disables the watchdog; enabling
    /// it makes ladder trajectories timing-dependent, so it is meant
    /// for deployments, not byte-compared CI runs.
    pub drain_deadline: Option<Duration>,
}

impl Default for GuardConfig {
    fn default() -> GuardConfig {
        GuardConfig {
            budget_bytes: None,
            spill_dir: None,
            gate_only_at: 0.5,
            tier1_only_at: 0.75,
            shed_at: 0.9,
            cool_cycles: 2,
            breaker: BreakerConfig::default(),
            drain_deadline: None,
        }
    }
}

impl GuardConfig {
    /// A default config with budget and spill directory taken from the
    /// `DETDIV_GUARD_BYTES` / `DETDIV_GUARD_DIR` environment variables
    /// (unset or unparsable values leave the corresponding field
    /// `None`).
    pub fn from_env() -> GuardConfig {
        let mut config = GuardConfig::default();
        if let Some(bytes) = std::env::var(ENV_GUARD_BYTES)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
        {
            config.budget_bytes = Some(bytes);
        }
        if let Ok(dir) = std::env::var(ENV_GUARD_DIR) {
            if !dir.trim().is_empty() {
                config.spill_dir = Some(PathBuf::from(dir));
            }
        }
        config
    }

    /// The per-shard slice of the total byte budget (`None` when no
    /// budget is configured). At least 1 so a configured budget always
    /// binds.
    pub fn shard_budget(&self, shards: usize) -> Option<u64> {
        self.budget_bytes
            .map(|total| (total / shards.max(1) as u64).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_thresholds_are_ordered() {
        let c = GuardConfig::default();
        assert!(c.gate_only_at < c.tier1_only_at);
        assert!(c.tier1_only_at < c.shed_at);
        assert!(c.shed_at <= 1.0);
        assert!(c.drain_deadline.is_none(), "watchdog is opt-in");
    }

    #[test]
    fn shard_budget_divides_and_never_hits_zero() {
        let mut c = GuardConfig::default();
        assert_eq!(c.shard_budget(4), None);
        c.budget_bytes = Some(1000);
        assert_eq!(c.shard_budget(4), Some(250));
        c.budget_bytes = Some(3);
        assert_eq!(c.shard_budget(8), Some(1), "tiny budgets still bind");
    }
}

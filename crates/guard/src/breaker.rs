//! The tier-2 escalation circuit breaker: a deterministic
//! closed → open → half-open state machine counted in drain cycles,
//! never wall-clock time.

/// Breaker thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive tier-2 failures that open the breaker.
    pub failure_threshold: u32,
    /// Drain cycles the breaker stays open before half-opening for a
    /// probe.
    pub open_cycles: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_cycles: 4,
        }
    }
}

/// Breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Tier-2 admitted normally.
    Closed,
    /// Tier-2 suppressed; escalated streams fall back to the gate.
    Open,
    /// One probe admitted: its outcome closes or re-opens.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name (flight records, introspection JSON).
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }

    /// Dense index (gauge export).
    pub fn index(&self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

/// A `(from, to)` breaker transition, reported so the serve layer can
/// emit a flight audit record.
pub type BreakerTransition = (BreakerState, BreakerState);

/// The per-shard breaker. All timing is in drain cycles
/// ([`on_cycle`](Breaker::on_cycle) advances them), so the trajectory
/// is a pure function of the failure/success sequence.
#[derive(Debug, Clone)]
pub struct Breaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at_cycle: u64,
    cycle: u64,
    opens: u64,
}

impl Breaker {
    /// A closed breaker (thresholds clamped to at least 1).
    pub fn new(config: BreakerConfig) -> Breaker {
        Breaker {
            config: BreakerConfig {
                failure_threshold: config.failure_threshold.max(1),
                open_cycles: config.open_cycles.max(1),
            },
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at_cycle: 0,
            cycle: 0,
            opens: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has opened.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// Whether a tier-2 push is admitted right now (closed, or
    /// half-open probing).
    pub fn admits(&self) -> bool {
        !matches!(self.state, BreakerState::Open)
    }

    /// Advances one drain cycle; an open breaker half-opens after its
    /// cooldown elapses.
    pub fn on_cycle(&mut self) -> Option<BreakerTransition> {
        self.cycle += 1;
        if self.state == BreakerState::Open
            && self.cycle - self.opened_at_cycle >= u64::from(self.config.open_cycles)
        {
            self.state = BreakerState::HalfOpen;
            return Some((BreakerState::Open, BreakerState::HalfOpen));
        }
        None
    }

    /// Records a successful tier-2 push: closes a half-open breaker,
    /// clears the failure streak otherwise.
    pub fn on_success(&mut self) -> Option<BreakerTransition> {
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
            return Some((BreakerState::HalfOpen, BreakerState::Closed));
        }
        None
    }

    /// Records a failed tier-2 push (a newly degraded slot or a
    /// deadline overrun): re-opens a half-open breaker immediately,
    /// opens a closed one at the failure threshold.
    pub fn on_failure(&mut self) -> Option<BreakerTransition> {
        match self.state {
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.opened_at_cycle = self.cycle;
                self.opens += 1;
                self.consecutive_failures = 0;
                Some((BreakerState::HalfOpen, BreakerState::Open))
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.state = BreakerState::Open;
                    self.opened_at_cycle = self.cycle;
                    self.opens += 1;
                    self.consecutive_failures = 0;
                    Some((BreakerState::Closed, BreakerState::Open))
                } else {
                    None
                }
            }
            BreakerState::Open => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_failures_open_interleaved_success_resets() {
        let mut b = Breaker::new(BreakerConfig {
            failure_threshold: 3,
            open_cycles: 2,
        });
        assert!(b.on_failure().is_none());
        assert!(b.on_failure().is_none());
        assert!(b.on_success().is_none(), "success clears the streak");
        assert!(b.on_failure().is_none());
        assert!(b.on_failure().is_none());
        let t = b.on_failure().expect("third consecutive failure opens");
        assert_eq!(t, (BreakerState::Closed, BreakerState::Open));
        assert!(!b.admits());
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn open_half_opens_after_the_cooldown_then_probes() {
        let mut b = Breaker::new(BreakerConfig {
            failure_threshold: 1,
            open_cycles: 2,
        });
        b.on_cycle();
        b.on_failure().expect("opens at threshold 1");
        assert!(b.on_cycle().is_none(), "cooldown cycle 1");
        let t = b.on_cycle().expect("cooldown elapsed");
        assert_eq!(t, (BreakerState::Open, BreakerState::HalfOpen));
        assert!(b.admits(), "half-open admits the probe");
        // A successful probe closes; a failing probe re-opens.
        let t = b.on_success().expect("probe success closes");
        assert_eq!(t, (BreakerState::HalfOpen, BreakerState::Closed));
        b.on_failure();
        assert!(!b.admits());
        b.on_cycle();
        b.on_cycle();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        let t = b.on_failure().expect("probe failure re-opens");
        assert_eq!(t, (BreakerState::HalfOpen, BreakerState::Open));
        assert_eq!(b.opens(), 3);
    }

    #[test]
    fn trajectories_replay_identically() {
        let drive = |b: &mut Breaker| {
            let mut log = Vec::new();
            for i in 0..40u32 {
                if let Some(t) = b.on_cycle() {
                    log.push(t);
                }
                let outcome = if i % 7 < 3 {
                    b.on_failure()
                } else {
                    b.on_success()
                };
                if let Some(t) = outcome {
                    log.push(t);
                }
            }
            log
        };
        let cfg = BreakerConfig {
            failure_threshold: 2,
            open_cycles: 3,
        };
        assert_eq!(drive(&mut Breaker::new(cfg)), drive(&mut Breaker::new(cfg)));
    }
}

//! Live guard counters, exposed to `detdiv-scope`'s `/guardz` endpoint
//! through the same registered-singleton pattern as
//! `detdiv-serve::introspect`.
//!
//! The serve layer updates plain atomics at drain-cycle boundaries (no
//! locks on the hot path); the registry holds at most one registered
//! guard — the daemon case — and renders a JSON snapshot on demand.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use crate::pressure::DegradationLevel;

/// Per-shard guard counters. `level`, `breaker_state`, and
/// `resident_bytes` are point-in-time gauges (published at the end of
/// each drain cycle); everything else is monotonic.
#[derive(Debug, Default)]
pub struct GuardShardStats {
    /// Current [`DegradationLevel`] as its dense index.
    pub level: AtomicU64,
    /// Current breaker state as its dense index.
    pub breaker_state: AtomicU64,
    /// Estimated resident detector-state bytes after the last
    /// hibernation pass.
    pub resident_bytes: AtomicU64,
    /// Enqueues rejected with the typed `Shedding` reason.
    pub shed: AtomicU64,
    /// Ladder transitions recorded (all causes).
    pub ladder_transitions: AtomicU64,
    /// Times the breaker opened.
    pub breaker_opens: AtomicU64,
    /// Streams spilled to the hibernation segment.
    pub hibernated: AtomicU64,
    /// Streams rehydrated from the segment on a later event.
    pub rehydrated: AtomicU64,
    /// Stuck-shard watchdog trips.
    pub watchdog_trips: AtomicU64,
}

/// Counters for one guarded service: a fixed vector of shard stats
/// plus the service-wide resident-bytes high-water mark.
#[derive(Debug)]
pub struct GuardStats {
    /// One entry per shard, index = shard id.
    pub shards: Vec<GuardShardStats>,
    /// Peak of summed per-shard resident bytes, updated at cycle ends.
    pub resident_peak: AtomicU64,
}

impl GuardStats {
    /// Stats for an `n`-shard guard, all zero, every ladder at `Full`.
    pub fn new(n: usize) -> GuardStats {
        GuardStats {
            shards: (0..n).map(|_| GuardShardStats::default()).collect(),
            resident_peak: AtomicU64::new(0),
        }
    }

    /// The published degradation level of `shard` (the enqueue path
    /// reads this to shed). Out-of-range shards read as `Full`.
    pub fn shard_level(&self, shard: usize) -> DegradationLevel {
        self.shards
            .get(shard)
            .map(|s| DegradationLevel::from_index(s.level.load(Ordering::Relaxed)))
            .unwrap_or(DegradationLevel::Full)
    }

    /// Whether every shard has returned to `Full`.
    pub fn all_full(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.level.load(Ordering::Relaxed) == DegradationLevel::Full.index())
    }

    /// Folds the current per-shard resident bytes into the service
    /// peak and returns the summed value.
    pub fn update_resident_peak(&self) -> u64 {
        let total = self.sum(|s| &s.resident_bytes);
        self.resident_peak.fetch_max(total, Ordering::Relaxed);
        total
    }

    fn sum(&self, field: impl Fn(&GuardShardStats) -> &AtomicU64) -> u64 {
        self.shards
            .iter()
            .map(|s| field(s).load(Ordering::Relaxed))
            .sum()
    }

    /// Renders the stats as one JSON object (stable key order).
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(256 + 96 * self.shards.len());
        out.push_str("{\"registered\":true");
        out.push_str(&format!(",\"shards\":{}", self.shards.len()));
        out.push_str(&format!(
            ",\"totals\":{{\"resident_bytes\":{},\"resident_peak\":{},\"shed\":{},\"ladder_transitions\":{},\"breaker_opens\":{},\"hibernated\":{},\"rehydrated\":{},\"watchdog_trips\":{}}}",
            self.sum(|s| &s.resident_bytes),
            self.resident_peak.load(Ordering::Relaxed),
            self.sum(|s| &s.shed),
            self.sum(|s| &s.ladder_transitions),
            self.sum(|s| &s.breaker_opens),
            self.sum(|s| &s.hibernated),
            self.sum(|s| &s.rehydrated),
            self.sum(|s| &s.watchdog_trips),
        ));
        out.push_str(",\"per_shard\":[");
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let level = DegradationLevel::from_index(s.level.load(Ordering::Relaxed));
            out.push_str(&format!(
                "{{\"shard\":{i},\"level\":\"{}\",\"breaker\":{},\"resident_bytes\":{},\"shed\":{},\"ladder_transitions\":{},\"breaker_opens\":{},\"hibernated\":{},\"rehydrated\":{},\"watchdog_trips\":{}}}",
                level.name(),
                s.breaker_state.load(Ordering::Relaxed),
                s.resident_bytes.load(Ordering::Relaxed),
                s.shed.load(Ordering::Relaxed),
                s.ladder_transitions.load(Ordering::Relaxed),
                s.breaker_opens.load(Ordering::Relaxed),
                s.hibernated.load(Ordering::Relaxed),
                s.rehydrated.load(Ordering::Relaxed),
                s.watchdog_trips.load(Ordering::Relaxed),
            ));
        }
        out.push_str("]}");
        out
    }
}

fn slot() -> &'static Mutex<Option<Arc<GuardStats>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<GuardStats>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Registers `stats` as the process's introspectable guard, replacing
/// any previous registration.
pub fn register(stats: Arc<GuardStats>) {
    *slot().lock().unwrap_or_else(PoisonError::into_inner) = Some(stats);
}

/// Clears the registration if `stats` is still the registered guard (a
/// later registration wins and is left in place).
pub fn deregister(stats: &Arc<GuardStats>) {
    let mut guard = slot().lock().unwrap_or_else(PoisonError::into_inner);
    if guard.as_ref().is_some_and(|s| Arc::ptr_eq(s, stats)) {
        *guard = None;
    }
}

/// JSON snapshot of the registered guard, or `{"registered":false}`
/// when no guarded service has registered.
pub fn render_json() -> String {
    match slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .as_ref()
    {
        Some(stats) => stats.render_json(),
        None => "{\"registered\":false}".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_registers_renders_and_deregisters() {
        let stats = Arc::new(GuardStats::new(2));
        stats.shards[0]
            .level
            .store(DegradationLevel::Shedding.index(), Ordering::Relaxed);
        stats.shards[0].shed.store(5, Ordering::Relaxed);
        stats.shards[1].resident_bytes.store(96, Ordering::Relaxed);
        assert_eq!(stats.shard_level(0), DegradationLevel::Shedding);
        assert_eq!(stats.shard_level(1), DegradationLevel::Full);
        assert_eq!(stats.shard_level(9), DegradationLevel::Full);
        assert!(!stats.all_full());
        assert_eq!(stats.update_resident_peak(), 96);
        register(Arc::clone(&stats));
        let json = render_json();
        assert!(json.contains("\"registered\":true"), "{json}");
        assert!(json.contains("\"level\":\"shedding\""), "{json}");
        assert!(json.contains("\"shed\":5"), "{json}");
        assert!(json.contains("\"resident_peak\":96"), "{json}");
        deregister(&stats);
        assert_eq!(render_json(), "{\"registered\":false}");
    }

    #[test]
    fn resident_peak_is_a_high_water_mark() {
        let stats = GuardStats::new(1);
        stats.shards[0].resident_bytes.store(100, Ordering::Relaxed);
        assert_eq!(stats.update_resident_peak(), 100);
        stats.shards[0].resident_bytes.store(40, Ordering::Relaxed);
        assert_eq!(stats.update_resident_peak(), 40, "gauge falls");
        assert_eq!(
            stats.resident_peak.load(Ordering::Relaxed),
            100,
            "peak holds"
        );
    }
}

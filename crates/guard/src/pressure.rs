//! The deterministic pressure model: discrete levels computed from
//! observed counters, never from wall-clock readings.

use crate::config::GuardConfig;

/// Discrete pressure classification of one shard at one drain cycle.
///
/// Ordered: comparison follows severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PressureLevel {
    /// Everything within bounds.
    Nominal,
    /// Queue fill crossed the gate-only threshold.
    Elevated,
    /// Queue fill crossed the tier1-only threshold, the resident-bytes
    /// budget is exceeded, or the previous drain breached its deadline.
    High,
    /// Queue fill crossed the shed threshold.
    Critical,
}

/// What one drain cycle observed about a shard. Every field is a
/// counter or flag the service maintains deterministically — the
/// sample, and therefore the classification, is identical at every
/// worker width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PressureSample {
    /// Queue depth at the start of the drain cycle.
    pub queue_depth: usize,
    /// The shard queue's configured bound.
    pub queue_capacity: usize,
    /// Estimated resident detector-state bytes after the previous
    /// cycle's hibernation pass.
    pub resident_bytes: u64,
    /// The per-shard byte budget, if one is configured.
    pub budget_bytes: Option<u64>,
    /// Whether the previous drain cycle breached its deadline.
    pub deadline_breached: bool,
}

impl PressureSample {
    /// Classifies the sample against the config's thresholds: the
    /// worst applicable level wins. Pure — no clock, no randomness.
    pub fn classify(&self, config: &GuardConfig) -> PressureLevel {
        let fill = if self.queue_capacity == 0 {
            0.0
        } else {
            self.queue_depth as f64 / self.queue_capacity as f64
        };
        let mut level = PressureLevel::Nominal;
        if fill >= config.gate_only_at {
            level = level.max(PressureLevel::Elevated);
        }
        if fill >= config.tier1_only_at {
            level = level.max(PressureLevel::High);
        }
        if fill >= config.shed_at {
            level = level.max(PressureLevel::Critical);
        }
        if let Some(budget) = self.budget_bytes {
            if self.resident_bytes > budget {
                level = level.max(PressureLevel::High);
            }
        }
        if self.deadline_breached {
            level = level.max(PressureLevel::High);
        }
        level
    }
}

/// Rung of the degradation ladder. Ordered: higher is more degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationLevel {
    /// Normal operation: gate scores, escalations admitted, tier-2
    /// banks run.
    Full,
    /// New escalations are deferred (the would-escalate verdict is
    /// emitted with an `escalation-deferred` reason); already-escalated
    /// streams keep their tier-2 banks.
    GatedOnly,
    /// Tier-2 is suppressed entirely: escalated streams fall back to
    /// their tier-1 gate verdict at degraded confidence.
    Tier1Only,
    /// Tier1Only drain behaviour plus typed `Shedding` rejection of
    /// every new enqueue.
    Shedding,
}

impl DegradationLevel {
    /// The ladder rung a pressure level demands.
    pub fn target_for(pressure: PressureLevel) -> DegradationLevel {
        match pressure {
            PressureLevel::Nominal => DegradationLevel::Full,
            PressureLevel::Elevated => DegradationLevel::GatedOnly,
            PressureLevel::High => DegradationLevel::Tier1Only,
            PressureLevel::Critical => DegradationLevel::Shedding,
        }
    }

    /// Stable lowercase name (flight records, introspection JSON).
    pub fn name(&self) -> &'static str {
        match self {
            DegradationLevel::Full => "full",
            DegradationLevel::GatedOnly => "gated-only",
            DegradationLevel::Tier1Only => "tier1-only",
            DegradationLevel::Shedding => "shedding",
        }
    }

    /// One rung less degraded (saturating at `Full`).
    pub fn step_down(&self) -> DegradationLevel {
        match self {
            DegradationLevel::Full | DegradationLevel::GatedOnly => DegradationLevel::Full,
            DegradationLevel::Tier1Only => DegradationLevel::GatedOnly,
            DegradationLevel::Shedding => DegradationLevel::Tier1Only,
        }
    }

    /// Dense index (gauge export).
    pub fn index(&self) -> u64 {
        match self {
            DegradationLevel::Full => 0,
            DegradationLevel::GatedOnly => 1,
            DegradationLevel::Tier1Only => 2,
            DegradationLevel::Shedding => 3,
        }
    }

    /// Inverse of [`index`](DegradationLevel::index); out-of-range
    /// values clamp to `Shedding` (the conservative reading).
    pub fn from_index(index: u64) -> DegradationLevel {
        match index {
            0 => DegradationLevel::Full,
            1 => DegradationLevel::GatedOnly,
            2 => DegradationLevel::Tier1Only,
            _ => DegradationLevel::Shedding,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(depth: usize, cap: usize) -> PressureSample {
        PressureSample {
            queue_depth: depth,
            queue_capacity: cap,
            resident_bytes: 0,
            budget_bytes: None,
            deadline_breached: false,
        }
    }

    #[test]
    fn queue_fill_walks_the_levels() {
        let cfg = GuardConfig::default();
        assert_eq!(sample(0, 100).classify(&cfg), PressureLevel::Nominal);
        assert_eq!(sample(50, 100).classify(&cfg), PressureLevel::Elevated);
        assert_eq!(sample(75, 100).classify(&cfg), PressureLevel::High);
        assert_eq!(sample(90, 100).classify(&cfg), PressureLevel::Critical);
        assert_eq!(sample(100, 100).classify(&cfg), PressureLevel::Critical);
    }

    #[test]
    fn budget_overrun_and_deadline_breach_are_high_pressure() {
        let cfg = GuardConfig::default();
        let mut s = sample(0, 100);
        s.resident_bytes = 2048;
        s.budget_bytes = Some(1024);
        assert_eq!(s.classify(&cfg), PressureLevel::High);
        let mut s = sample(0, 100);
        s.deadline_breached = true;
        assert_eq!(s.classify(&cfg), PressureLevel::High);
        // Critical queue fill still dominates.
        let mut s = sample(95, 100);
        s.deadline_breached = true;
        assert_eq!(s.classify(&cfg), PressureLevel::Critical);
    }

    #[test]
    fn classification_is_pure() {
        let cfg = GuardConfig::default();
        let s = sample(80, 100);
        assert_eq!(s.classify(&cfg), s.classify(&cfg));
    }

    #[test]
    fn target_levels_and_names_round_trip() {
        for (p, l, name) in [
            (PressureLevel::Nominal, DegradationLevel::Full, "full"),
            (
                PressureLevel::Elevated,
                DegradationLevel::GatedOnly,
                "gated-only",
            ),
            (
                PressureLevel::High,
                DegradationLevel::Tier1Only,
                "tier1-only",
            ),
            (
                PressureLevel::Critical,
                DegradationLevel::Shedding,
                "shedding",
            ),
        ] {
            assert_eq!(DegradationLevel::target_for(p), l);
            assert_eq!(l.name(), name);
            assert_eq!(DegradationLevel::from_index(l.index()), l);
        }
    }

    #[test]
    fn step_down_descends_one_rung_and_saturates() {
        assert_eq!(
            DegradationLevel::Shedding.step_down(),
            DegradationLevel::Tier1Only
        );
        assert_eq!(
            DegradationLevel::Tier1Only.step_down(),
            DegradationLevel::GatedOnly
        );
        assert_eq!(
            DegradationLevel::GatedOnly.step_down(),
            DegradationLevel::Full
        );
        assert_eq!(DegradationLevel::Full.step_down(), DegradationLevel::Full);
    }
}

//! The degradation ladder: a per-shard hysteresis state machine over
//! [`DegradationLevel`] driven by one [`PressureLevel`] observation per
//! drain cycle.

use crate::pressure::{DegradationLevel, PressureLevel};

/// Why a ladder transition happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionCause {
    /// Pressure demanded a more degraded rung (immediate jump).
    Pressure,
    /// Enough consecutive calm cycles passed (one rung down).
    Cooldown,
    /// The stuck-shard watchdog forced a floor.
    Watchdog,
}

impl TransitionCause {
    /// Stable lowercase name (flight records).
    pub fn name(&self) -> &'static str {
        match self {
            TransitionCause::Pressure => "pressure",
            TransitionCause::Cooldown => "cooldown",
            TransitionCause::Watchdog => "watchdog",
        }
    }
}

/// One recorded ladder movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LadderTransition {
    /// The drain cycle (1-based, counted per shard) at which the
    /// transition took effect.
    pub cycle: u64,
    /// Rung before.
    pub from: DegradationLevel,
    /// Rung after.
    pub to: DegradationLevel,
    /// What drove it.
    pub cause: TransitionCause,
}

/// The hysteresis state machine. Escalation is immediate (pressure
/// spikes must not wait out a cooldown); de-escalation steps down one
/// rung only after `cool_cycles` consecutive observations whose target
/// is below the current rung, so a flapping queue cannot oscillate the
/// service every cycle.
///
/// Everything is a pure function of the observation sequence: feeding
/// the same pressure levels in the same order reproduces the same
/// transition history, which is what the cross-width determinism suite
/// pins down.
#[derive(Debug, Clone)]
pub struct Ladder {
    level: DegradationLevel,
    cool_cycles: u32,
    calm_streak: u32,
    cycle: u64,
}

impl Ladder {
    /// A ladder at `Full` with the given de-escalation hysteresis
    /// (clamped to at least 1 cycle).
    pub fn new(cool_cycles: u32) -> Ladder {
        Ladder {
            level: DegradationLevel::Full,
            cool_cycles: cool_cycles.max(1),
            calm_streak: 0,
            cycle: 0,
        }
    }

    /// The current rung.
    pub fn level(&self) -> DegradationLevel {
        self.level
    }

    /// Drain cycles observed so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Feeds one drain cycle's pressure observation; returns the
    /// transition it caused, if any.
    pub fn observe(&mut self, pressure: PressureLevel) -> Option<LadderTransition> {
        self.cycle += 1;
        let target = DegradationLevel::target_for(pressure);
        if target > self.level {
            let from = self.level;
            self.level = target;
            self.calm_streak = 0;
            return Some(LadderTransition {
                cycle: self.cycle,
                from,
                to: target,
                cause: TransitionCause::Pressure,
            });
        }
        if target < self.level {
            self.calm_streak += 1;
            if self.calm_streak >= self.cool_cycles {
                let from = self.level;
                self.level = self.level.step_down();
                self.calm_streak = 0;
                return Some(LadderTransition {
                    cycle: self.cycle,
                    from,
                    to: self.level,
                    cause: TransitionCause::Cooldown,
                });
            }
        } else {
            self.calm_streak = 0;
        }
        None
    }

    /// Forces the rung to at least `floor` (the watchdog path). A
    /// no-op when already at or above it.
    pub fn force_at_least(&mut self, floor: DegradationLevel) -> Option<LadderTransition> {
        if self.level >= floor {
            return None;
        }
        let from = self.level;
        self.level = floor;
        self.calm_streak = 0;
        Some(LadderTransition {
            cycle: self.cycle,
            from,
            to: floor,
            cause: TransitionCause::Watchdog,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pressure::PressureLevel as P;

    fn history(ladder: &mut Ladder, observations: &[P]) -> Vec<LadderTransition> {
        observations
            .iter()
            .filter_map(|&p| ladder.observe(p))
            .collect()
    }

    #[test]
    fn escalation_jumps_immediately() {
        let mut l = Ladder::new(2);
        let t = l.observe(P::Critical).expect("must transition");
        assert_eq!(t.from, DegradationLevel::Full);
        assert_eq!(t.to, DegradationLevel::Shedding);
        assert_eq!(t.cause, TransitionCause::Pressure);
        assert_eq!(t.cycle, 1);
    }

    #[test]
    fn deescalation_needs_the_cooldown_and_steps_one_rung() {
        let mut l = Ladder::new(2);
        l.observe(P::Critical);
        assert!(l.observe(P::Nominal).is_none(), "first calm cycle waits");
        let t = l.observe(P::Nominal).expect("second calm cycle steps");
        assert_eq!(t.from, DegradationLevel::Shedding);
        assert_eq!(t.to, DegradationLevel::Tier1Only);
        assert_eq!(t.cause, TransitionCause::Cooldown);
        // Full recovery takes cool_cycles per remaining rung.
        let rest = history(&mut l, &[P::Nominal; 4]);
        assert_eq!(
            rest.iter().map(|t| t.to).collect::<Vec<_>>(),
            vec![DegradationLevel::GatedOnly, DegradationLevel::Full]
        );
        assert_eq!(l.level(), DegradationLevel::Full);
    }

    #[test]
    fn matching_pressure_resets_the_calm_streak() {
        let mut l = Ladder::new(2);
        l.observe(P::High);
        l.observe(P::Nominal); // calm 1
        l.observe(P::High); // streak resets, no transition (already there)
        assert!(l.observe(P::Nominal).is_none(), "streak restarted");
        assert!(l.observe(P::Nominal).is_some());
    }

    #[test]
    fn histories_replay_identically() {
        let obs = [
            P::Nominal,
            P::Elevated,
            P::Critical,
            P::Nominal,
            P::Nominal,
            P::Nominal,
            P::High,
            P::Nominal,
            P::Nominal,
        ];
        let a = history(&mut Ladder::new(2), &obs);
        let b = history(&mut Ladder::new(2), &obs);
        assert_eq!(a, b, "the ladder is a pure function of its inputs");
    }

    #[test]
    fn watchdog_floor_records_and_saturates() {
        let mut l = Ladder::new(2);
        let t = l
            .force_at_least(DegradationLevel::Tier1Only)
            .expect("forces");
        assert_eq!(t.cause, TransitionCause::Watchdog);
        assert_eq!(t.to, DegradationLevel::Tier1Only);
        assert!(
            l.force_at_least(DegradationLevel::GatedOnly).is_none(),
            "already above the floor"
        );
        assert_eq!(l.level(), DegradationLevel::Tier1Only);
    }
}

//! `detdiv-guard`: overload protection and graceful degradation for
//! the sharded ingest service (std only, `detdiv-resil` for the
//! checksummed wire format).
//!
//! The serve layer rejects on full queues but has no policy *above*
//! that bound: sustained overload, a stalled tier-2 bank, or unbounded
//! resident stream state all lacked a controlled response. This crate
//! is that policy layer, and every decision in it is a pure function
//! of observed counters so chaos/CI runs replay bit-identically:
//!
//! * **Pressure model** ([`PressureSample`], [`PressureLevel`]) — a
//!   per-shard sample of queue depth, resident state bytes, and the
//!   drain-deadline flag classifies into a discrete pressure level.
//!   No wall-clock value ever enters the classification.
//! * **Degradation ladder** ([`Ladder`], [`DegradationLevel`]) —
//!   `Full → GatedOnly → Tier1Only → Shedding` with hysteresis:
//!   escalation jumps straight to the target level, de-escalation
//!   steps down one rung only after a configurable number of
//!   consecutive calm drain cycles. Transitions are recorded as
//!   [`LadderTransition`]s for the flight audit log.
//! * **Circuit breaker** ([`Breaker`]) around tier-2 escalation —
//!   consecutive failures open it, a deterministic cycle-counted
//!   cooldown half-opens it, and a successful probe closes it again.
//!   While open, escalated streams fall back to their tier-1 gate
//!   verdict tagged with a degraded-confidence reason (the serve layer
//!   owns that emission).
//! * **Cold-stream hibernation** ([`HibernationStore`]) — LRU-idle
//!   streams spill their serialized state to a checksummed segment
//!   file and rehydrate on their next event, capping resident memory
//!   under a `DETDIV_GUARD_BYTES` budget.
//!
//! Live counters are exported through [`introspect`] (scope's
//! `/guardz` endpoint) in the same registered-singleton pattern as
//! `detdiv-serve`'s `/servez`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::print_stdout, clippy::print_stderr)]

mod breaker;
mod config;
mod hibernate;
pub mod introspect;
mod ladder;
mod pressure;

pub use breaker::{Breaker, BreakerConfig, BreakerState, BreakerTransition};
pub use config::{GuardConfig, ENV_GUARD_BYTES, ENV_GUARD_DIR};
pub use hibernate::HibernationStore;
pub use ladder::{Ladder, LadderTransition, TransitionCause};
pub use pressure::{DegradationLevel, PressureLevel, PressureSample};

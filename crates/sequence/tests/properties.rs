//! Property-based tests for the sequence substrate's core invariants.

use detdiv_sequence::{minimal_foreign_positions, NgramCounter, NgramSet, StreamProfile, Symbol};
use proptest::prelude::*;

/// Strategy: a stream of symbols over a small alphabet, long enough for
/// profiling at the lengths we test.
fn stream(max_sym: u32, min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<Symbol>> {
    prop::collection::vec((0..max_sym).prop_map(Symbol::new), min_len..=max_len)
}

proptest! {
    /// Every window of the source stream is contained in the set built
    /// from it, and its count in the counter is positive.
    #[test]
    fn all_windows_are_members(s in stream(6, 8, 128), len in 1usize..5) {
        let set = NgramSet::from_stream(&s, len);
        let counter = NgramCounter::from_stream(&s, len);
        for w in s.windows(len) {
            prop_assert!(set.contains(w));
            prop_assert!(counter.count(w) > 0);
        }
    }

    /// The counter's total equals the number of windows, and per-gram
    /// counts sum to the total.
    #[test]
    fn counter_totals_are_consistent(s in stream(6, 8, 128), len in 1usize..5) {
        let counter = NgramCounter::from_stream(&s, len);
        let expected = s.len().saturating_sub(len - 1) as u64;
        prop_assert_eq!(counter.total_windows(), expected);
        let sum: u64 = counter.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(sum, expected);
    }

    /// Relative frequencies lie in [0, 1] and sum to 1 over distinct grams.
    #[test]
    fn relative_frequencies_normalise(s in stream(4, 8, 96), len in 1usize..4) {
        let counter = NgramCounter::from_stream(&s, len);
        let mut sum = 0.0;
        for (g, _) in counter.iter() {
            let f = counter.relative_frequency(g);
            prop_assert!((0.0..=1.0).contains(&f));
            sum += f;
        }
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    /// Foreign / rare / common partition the space of same-length grams:
    /// exactly one of the three holds for any gram.
    #[test]
    fn anomaly_taxonomy_is_a_partition(
        s in stream(4, 8, 96),
        probe in prop::collection::vec(0u32..4, 3),
        threshold in 0.001f64..0.999,
    ) {
        let counter = NgramCounter::from_stream(&s, 3);
        let gram: Vec<Symbol> = probe.into_iter().map(Symbol::new).collect();
        let f = counter.is_foreign(&gram);
        let r = counter.is_rare(&gram, threshold);
        let c = counter.is_common(&gram, threshold);
        prop_assert_eq!(usize::from(f) + usize::from(r) + usize::from(c), 1);
    }

    /// Minimality is equivalent to the explicit definition: foreign, and
    /// every proper contiguous subsequence occurs.
    #[test]
    fn minimality_matches_explicit_definition(
        s in stream(3, 10, 80),
        probe in prop::collection::vec(0u32..3, 2..5),
    ) {
        let max_len = 5;
        let s = if s.len() >= max_len { s } else { return Ok(()); };
        let profile = StreamProfile::build(&s, max_len).unwrap();
        let gram: Vec<Symbol> = probe.into_iter().map(Symbol::new).collect();

        let explicit = profile.is_foreign(&gram) && {
            let mut all_subs_exist = true;
            for sub_len in 1..gram.len() {
                for w in gram.windows(sub_len) {
                    if !profile.contains(w) {
                        all_subs_exist = false;
                    }
                }
            }
            all_subs_exist
        };
        prop_assert_eq!(profile.is_minimal_foreign(&gram), explicit);
    }

    /// Foreignness is upward closed: any contiguous supersequence of a
    /// foreign sequence is itself foreign.
    #[test]
    fn foreignness_is_upward_closed(
        s in stream(3, 10, 80),
        probe in prop::collection::vec(0u32..3, 4),
    ) {
        let profile = StreamProfile::build(&s, 4).unwrap();
        let gram: Vec<Symbol> = probe.into_iter().map(Symbol::new).collect();
        // If any sub-window of length 3 is foreign, the length-4 gram is too.
        for w in gram.windows(3) {
            if profile.is_foreign(w) {
                prop_assert!(profile.is_foreign(&gram));
            }
        }
    }

    /// The census reports exactly the positions whose window is an MFS.
    #[test]
    fn census_agrees_with_pointwise_checks(
        train in stream(3, 10, 80),
        test in stream(3, 5, 40),
    ) {
        let profile = StreamProfile::build(&train, 4).unwrap();
        let hits = minimal_foreign_positions(&profile, &test, 3).unwrap();
        for (i, w) in test.windows(3).enumerate() {
            prop_assert_eq!(hits.contains(&i), profile.is_minimal_foreign(w));
        }
    }
}

proptest! {
    /// The suffix-automaton index agrees with the brute-force counters
    /// at every length, on arbitrary streams.
    #[test]
    fn substring_index_matches_counters(s in stream(4, 1, 120)) {
        use detdiv_sequence::SubstringIndex;
        let idx = SubstringIndex::build(&s);
        for len in 1..=4.min(s.len()) {
            let counter = NgramCounter::from_stream(&s, len);
            for w in s.windows(len) {
                prop_assert_eq!(idx.count(w), counter.count(w));
                prop_assert!(idx.contains(w));
            }
        }
        prop_assert!(idx.state_count() <= 2 * s.len().max(1));
    }

    /// Index-based MFS checks agree with profile-based ones for any
    /// probe within the profiled range.
    #[test]
    fn substring_index_matches_profile_mfs(
        s in stream(3, 6, 100),
        probe in prop::collection::vec(0u32..3, 2..5),
    ) {
        use detdiv_sequence::SubstringIndex;
        let profile = StreamProfile::build(&s, 5).unwrap();
        let idx = SubstringIndex::build(&s);
        let gram: Vec<Symbol> = probe.into_iter().map(Symbol::new).collect();
        prop_assert_eq!(idx.is_foreign(&gram), profile.is_foreign(&gram));
        prop_assert_eq!(idx.is_minimal_foreign(&gram), profile.is_minimal_foreign(&gram));
        prop_assert_eq!(idx.count(&gram), profile.count(&gram));
    }
}

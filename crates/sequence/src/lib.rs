//! Categorical-sequence substrate for the `detdiv` reproduction of
//! Tan & Maxion, *"The Effects of Algorithmic Diversity on Anomaly
//! Detector Performance"* (DSN 2005).
//!
//! Every detector in the study consumes **fixed-length sequences of
//! categorical data** obtained by sliding a window over a stream. This
//! crate provides that shared vocabulary:
//!
//! * [`Symbol`], [`Alphabet`], [`SymbolTable`] — categorical elements and
//!   their closed universes;
//! * [`NgramSet`] / [`NgramCounter`] — the "normal database" of DW-sized
//!   sequences, in presence/absence and counting form;
//! * [`StreamProfile`] — multi-length occurrence profiles supporting the
//!   study's anomaly taxonomy: *foreign*, *rare* (relative frequency
//!   below 0.5 %, [`DEFAULT_RARE_THRESHOLD`]) and *minimal foreign*
//!   sequences (MFS, §5.1 of the paper);
//! * [`SubstringIndex`] — a suffix-automaton index answering the same
//!   questions for patterns of *any* length in `O(pattern)` time;
//! * [`minimal_foreign_positions`] — the census tool behind the paper's
//!   observation (§4.1) that natural data is replete with MFSs.
//!
//! # Example: classifying an anomaly the way the paper does
//!
//! ```
//! use detdiv_sequence::{symbols, StreamProfile};
//!
//! // Training data: a common cycle with one rare excursion (2 -> 4).
//! let mut train = Vec::new();
//! for _ in 0..500 {
//!     train.extend(symbols(&[1, 2, 3, 4]));
//! }
//! train.extend(symbols(&[2, 4]));
//!
//! let profile = StreamProfile::build(&train, 4).unwrap();
//!
//! // (1,2,4): every proper subsequence occurs, the whole does not — the
//! // minimal foreign sequence used as the study's anomaly.
//! let anomaly = symbols(&[1, 2, 4]);
//! assert!(profile.is_minimal_foreign(&anomaly));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::print_stdout, clippy::print_stderr)]

mod error;
mod index;
mod ngram;
mod profile;
mod symbol;

pub use error::SequenceError;
pub use index::SubstringIndex;
pub use ngram::{NgramCounter, NgramSet, DEFAULT_RARE_THRESHOLD};
pub use profile::{minimal_foreign_positions, StreamProfile};
pub use symbol::{symbols, Alphabet, Symbol, SymbolTable};

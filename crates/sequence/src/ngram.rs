//! Fixed-length sequence (n-gram) databases.
//!
//! All four detectors of the study acquire normal behaviour "by sliding a
//! detector window of fixed-length size (DW) across the training data, and
//! storing the DW-sized sequences in a database" (§5.2). [`NgramSet`] is
//! that database in its presence/absence form (sufficient for Stide and
//! Lane & Brodley); [`NgramCounter`] additionally tracks occurrence counts
//! and relative frequencies, which the rare-sequence definition (§5.3) and
//! the probabilistic detectors require.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::symbol::Symbol;

/// The paper's definition of a *rare* sequence: relative frequency below
/// 0.5 % in the training data (§5.3, taken from Warrender et al. 1999).
pub const DEFAULT_RARE_THRESHOLD: f64 = 0.005;

/// A presence/absence database of fixed-length sequences.
///
/// # Examples
///
/// ```
/// use detdiv_sequence::{symbols, NgramSet};
///
/// let stream = symbols(&[1, 2, 3, 1, 2, 3]);
/// let db = NgramSet::from_stream(&stream, 2);
/// assert!(db.contains(&symbols(&[1, 2])));
/// assert!(db.contains(&symbols(&[3, 1])));
/// assert!(!db.contains(&symbols(&[2, 1]))); // foreign
/// assert_eq!(db.ngram_len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NgramSet {
    ngram_len: usize,
    set: HashSet<Box<[Symbol]>>,
}

impl NgramSet {
    /// Creates an empty database for sequences of length `ngram_len`.
    ///
    /// # Panics
    ///
    /// Panics if `ngram_len` is zero.
    pub fn new(ngram_len: usize) -> Self {
        assert!(ngram_len > 0, "ngram length must be positive");
        NgramSet {
            ngram_len,
            set: HashSet::new(),
        }
    }

    /// Builds the database of every length-`ngram_len` window of `stream`.
    ///
    /// Streams shorter than the window produce an empty database, matching
    /// the behaviour of a sliding window that never fits.
    pub fn from_stream(stream: &[Symbol], ngram_len: usize) -> Self {
        let mut db = NgramSet::new(ngram_len);
        db.extend_from_stream(stream);
        db
    }

    /// Slides the window across `stream` and inserts every window.
    pub fn extend_from_stream(&mut self, stream: &[Symbol]) {
        if stream.len() < self.ngram_len {
            return;
        }
        for w in stream.windows(self.ngram_len) {
            if !self.set.contains(w) {
                self.set.insert(w.to_vec().into_boxed_slice());
            }
        }
    }

    /// Inserts one sequence; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `gram.len() != self.ngram_len()`.
    pub fn insert(&mut self, gram: &[Symbol]) -> bool {
        assert_eq!(
            gram.len(),
            self.ngram_len,
            "inserted gram length must match the database's ngram length"
        );
        if self.set.contains(gram) {
            false
        } else {
            self.set.insert(gram.to_vec().into_boxed_slice())
        }
    }

    /// Whether `gram` is present in the database.
    ///
    /// Sequences of the wrong length are never present.
    #[inline]
    pub fn contains(&self, gram: &[Symbol]) -> bool {
        gram.len() == self.ngram_len && self.set.contains(gram)
    }

    /// The fixed sequence length of this database.
    #[inline]
    pub const fn ngram_len(&self) -> usize {
        self.ngram_len
    }

    /// Number of distinct sequences stored.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the database holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Iterates over the distinct stored sequences in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &[Symbol]> {
        self.set.iter().map(|b| b.as_ref())
    }
}

impl fmt::Display for NgramSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ngram-set(len={}, distinct={})",
            self.ngram_len,
            self.set.len()
        )
    }
}

impl Extend<Box<[Symbol]>> for NgramSet {
    fn extend<T: IntoIterator<Item = Box<[Symbol]>>>(&mut self, iter: T) {
        for gram in iter {
            assert_eq!(gram.len(), self.ngram_len);
            self.set.insert(gram);
        }
    }
}

/// A counting database of fixed-length sequences with relative-frequency
/// queries.
///
/// The total used as the denominator of a relative frequency is the number
/// of windows observed (stream length − window length + 1, summed over all
/// ingested streams), matching the paper's notion of a sequence's relative
/// frequency in the training data.
///
/// # Examples
///
/// ```
/// use detdiv_sequence::{symbols, NgramCounter};
///
/// let stream = symbols(&[1, 2, 1, 2, 1, 3]);
/// let db = NgramCounter::from_stream(&stream, 2);
/// assert_eq!(db.count(&symbols(&[1, 2])), 2);
/// assert_eq!(db.count(&symbols(&[1, 3])), 1);
/// assert_eq!(db.count(&symbols(&[3, 1])), 0);
/// assert_eq!(db.total_windows(), 5);
/// assert!(db.is_foreign(&symbols(&[3, 1])));
/// assert!(db.is_rare(&symbols(&[1, 3]), 0.25));
/// assert!(!db.is_rare(&symbols(&[1, 2]), 0.25)); // common at 40 %
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NgramCounter {
    ngram_len: usize,
    counts: HashMap<Box<[Symbol]>, u64>,
    total: u64,
}

impl NgramCounter {
    /// Creates an empty counter for sequences of length `ngram_len`.
    ///
    /// # Panics
    ///
    /// Panics if `ngram_len` is zero.
    pub fn new(ngram_len: usize) -> Self {
        assert!(ngram_len > 0, "ngram length must be positive");
        NgramCounter {
            ngram_len,
            counts: HashMap::new(),
            total: 0,
        }
    }

    /// Builds the counter over every length-`ngram_len` window of `stream`.
    pub fn from_stream(stream: &[Symbol], ngram_len: usize) -> Self {
        let mut db = NgramCounter::new(ngram_len);
        db.extend_from_stream(stream);
        db
    }

    /// Slides the window across `stream`, counting every window.
    pub fn extend_from_stream(&mut self, stream: &[Symbol]) {
        if stream.len() < self.ngram_len {
            return;
        }
        for w in stream.windows(self.ngram_len) {
            self.total += 1;
            // Lookup-then-insert avoids allocating a boxed key on the hot
            // path (already-present grams dominate in repetitive streams).
            if let Some(count) = self.counts.get_mut(w) {
                *count += 1;
            } else {
                self.counts.insert(w.to_vec().into_boxed_slice(), 1);
            }
        }
    }

    /// Occurrence count of `gram` (zero for foreign or wrong-length grams).
    #[inline]
    pub fn count(&self, gram: &[Symbol]) -> u64 {
        if gram.len() != self.ngram_len {
            return 0;
        }
        self.counts.get(gram).copied().unwrap_or(0)
    }

    /// Relative frequency of `gram` among all observed windows.
    ///
    /// Returns 0.0 when no windows have been observed.
    pub fn relative_frequency(&self, gram: &[Symbol]) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.count(gram) as f64 / self.total as f64
    }

    /// Whether `gram` never occurred — a *foreign* sequence (§5.1).
    #[inline]
    pub fn is_foreign(&self, gram: &[Symbol]) -> bool {
        self.count(gram) == 0
    }

    /// Whether `gram` occurred, but with relative frequency strictly below
    /// `threshold` — a *rare* sequence (§5.3).
    pub fn is_rare(&self, gram: &[Symbol], threshold: f64) -> bool {
        let c = self.count(gram);
        c > 0 && (c as f64 / self.total as f64) < threshold
    }

    /// Whether `gram` occurred with relative frequency at or above
    /// `threshold` — a *common* sequence.
    pub fn is_common(&self, gram: &[Symbol], threshold: f64) -> bool {
        let c = self.count(gram);
        c > 0 && (c as f64 / self.total as f64) >= threshold
    }

    /// The fixed sequence length of this counter.
    #[inline]
    pub const fn ngram_len(&self) -> usize {
        self.ngram_len
    }

    /// Total number of windows observed (denominator of relative
    /// frequencies).
    #[inline]
    pub const fn total_windows(&self) -> u64 {
        self.total
    }

    /// Number of distinct sequences observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Whether no windows have been observed.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Iterates over `(sequence, count)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&[Symbol], u64)> {
        self.counts.iter().map(|(k, &v)| (k.as_ref(), v))
    }

    /// The distinct sequences whose relative frequency is strictly below
    /// `threshold`, i.e. the rare portion of the database.
    pub fn rare_ngrams(&self, threshold: f64) -> Vec<&[Symbol]> {
        self.iter()
            .filter(|&(_, c)| (c as f64 / self.total as f64) < threshold)
            .map(|(g, _)| g)
            .collect()
    }

    /// Converts to a presence/absence view.
    pub fn to_set(&self) -> NgramSet {
        let mut set = NgramSet::new(self.ngram_len);
        set.extend(self.counts.keys().cloned());
        set
    }
}

impl fmt::Display for NgramCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ngram-counter(len={}, distinct={}, windows={})",
            self.ngram_len,
            self.counts.len(),
            self.total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::symbols;

    #[test]
    fn set_from_stream_collects_all_windows() {
        let s = symbols(&[1, 2, 3, 4, 1, 2]);
        let db = NgramSet::from_stream(&s, 3);
        assert_eq!(db.len(), 4); // 123 234 341 412
        assert!(db.contains(&symbols(&[3, 4, 1])));
        assert!(!db.contains(&symbols(&[4, 1, 3])));
    }

    #[test]
    fn set_ignores_wrong_length_lookups() {
        let db = NgramSet::from_stream(&symbols(&[1, 2, 3]), 2);
        assert!(!db.contains(&symbols(&[1, 2, 3])));
        assert!(!db.contains(&symbols(&[1])));
    }

    #[test]
    fn set_short_stream_is_empty() {
        let db = NgramSet::from_stream(&symbols(&[1, 2]), 5);
        assert!(db.is_empty());
        assert_eq!(db.len(), 0);
    }

    #[test]
    fn set_insert_reports_novelty() {
        let mut db = NgramSet::new(2);
        assert!(db.insert(&symbols(&[1, 2])));
        assert!(!db.insert(&symbols(&[1, 2])));
        assert_eq!(db.len(), 1);
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn set_insert_rejects_wrong_length() {
        let mut db = NgramSet::new(2);
        db.insert(&symbols(&[1, 2, 3]));
    }

    #[test]
    #[should_panic(expected = "ngram length must be positive")]
    fn set_rejects_zero_length() {
        let _ = NgramSet::new(0);
    }

    #[test]
    fn counter_counts_and_frequencies() {
        // windows of len 2: (1,2) (2,1) (1,2) (2,1) (1,2) => total 5
        let s = symbols(&[1, 2, 1, 2, 1, 2]);
        let db = NgramCounter::from_stream(&s, 2);
        assert_eq!(db.total_windows(), 5);
        assert_eq!(db.count(&symbols(&[1, 2])), 3);
        assert_eq!(db.count(&symbols(&[2, 1])), 2);
        assert!((db.relative_frequency(&symbols(&[1, 2])) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn counter_foreign_rare_common_partition() {
        let mut stream = Vec::new();
        // ~300 occurrences of (0,1); 1 occurrence of (2,3), whose relative
        // frequency 1/601 is safely below the 0.5 % rarity threshold.
        for _ in 0..300 {
            stream.extend(symbols(&[0, 1]));
        }
        stream.extend(symbols(&[2, 3]));
        let db = NgramCounter::from_stream(&stream, 2);
        let rare = symbols(&[2, 3]);
        let foreign = symbols(&[3, 2]);
        let common = symbols(&[0, 1]);
        assert!(db.is_rare(&rare, DEFAULT_RARE_THRESHOLD));
        assert!(db.is_foreign(&foreign));
        assert!(!db.is_rare(&foreign, DEFAULT_RARE_THRESHOLD)); // foreign is not rare
        assert!(db.is_common(&common, DEFAULT_RARE_THRESHOLD));
        assert!(!db.is_common(&foreign, DEFAULT_RARE_THRESHOLD));
    }

    #[test]
    fn counter_rare_ngrams_lists_only_rare() {
        let mut stream = Vec::new();
        for _ in 0..500 {
            stream.extend(symbols(&[0, 1]));
        }
        stream.extend(symbols(&[5, 6]));
        let db = NgramCounter::from_stream(&stream, 2);
        let rare = db.rare_ngrams(DEFAULT_RARE_THRESHOLD);
        // every listed gram is genuinely rare
        for g in &rare {
            assert!(db.is_rare(g, DEFAULT_RARE_THRESHOLD), "{g:?} not rare");
        }
        assert!(rare.iter().any(|g| *g == symbols(&[5, 6]).as_slice()));
    }

    #[test]
    fn counter_to_set_preserves_membership() {
        let s = symbols(&[1, 2, 3, 1, 2]);
        let counter = NgramCounter::from_stream(&s, 2);
        let set = counter.to_set();
        for (g, _) in counter.iter() {
            assert!(set.contains(g));
        }
        assert_eq!(set.len(), counter.distinct());
    }

    #[test]
    fn counter_empty_relative_frequency_is_zero() {
        let db = NgramCounter::new(3);
        assert_eq!(db.relative_frequency(&symbols(&[1, 2, 3])), 0.0);
        assert!(db.is_empty());
    }

    #[test]
    fn counter_extend_accumulates_across_streams() {
        let mut db = NgramCounter::new(2);
        db.extend_from_stream(&symbols(&[1, 2, 3]));
        db.extend_from_stream(&symbols(&[1, 2]));
        assert_eq!(db.count(&symbols(&[1, 2])), 2);
        assert_eq!(db.total_windows(), 3);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!NgramSet::new(2).to_string().is_empty());
        assert!(!NgramCounter::new(2).to_string().is_empty());
    }
}

//! Error types for the sequence substrate.

use std::error::Error;
use std::fmt;

/// Errors arising from sequence analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SequenceError {
    /// A window or gram length was outside the usable range.
    InvalidWindow {
        /// The offending length.
        window: usize,
    },
    /// A stream was too short for the requested analysis.
    StreamTooShort {
        /// Actual stream length.
        len: usize,
        /// Minimum length required.
        needed: usize,
    },
    /// A symbol fell outside the declared alphabet.
    SymbolOutOfAlphabet {
        /// The offending symbol identifier.
        symbol: u32,
        /// The alphabet size it violated.
        alphabet: u32,
    },
}

impl fmt::Display for SequenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SequenceError::InvalidWindow { window } => {
                write!(f, "invalid window length {window}")
            }
            SequenceError::StreamTooShort { len, needed } => {
                write!(
                    f,
                    "stream of length {len} is shorter than required {needed}"
                )
            }
            SequenceError::SymbolOutOfAlphabet { symbol, alphabet } => {
                write!(f, "symbol {symbol} outside alphabet of size {alphabet}")
            }
        }
    }
}

impl Error for SequenceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SequenceError::InvalidWindow { window: 0 }.to_string(),
            "invalid window length 0"
        );
        assert_eq!(
            SequenceError::StreamTooShort { len: 1, needed: 5 }.to_string(),
            "stream of length 1 is shorter than required 5"
        );
        assert_eq!(
            SequenceError::SymbolOutOfAlphabet {
                symbol: 9,
                alphabet: 8
            }
            .to_string(),
            "symbol 9 outside alphabet of size 8"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<SequenceError>();
    }
}

//! Categorical symbols and alphabets.
//!
//! All detectors in this workspace operate on streams of *categorical*
//! elements — system-call numbers, audit-event codes, user-command tokens.
//! [`Symbol`] is a dense integer identifier for one such element and
//! [`Alphabet`] describes the closed set `0..size` of identifiers a stream
//! may draw from. Free-form token streams (e.g. command names) are interned
//! through a [`SymbolTable`].

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A single categorical element of a data stream.
///
/// Symbols are plain dense identifiers; their numeric value carries no
/// ordering semantics for any detector (sequence detectors care only about
/// equality and position). The identifier is 32 bits, which comfortably
/// covers system-call tables, audit-event vocabularies and command
/// histories.
///
/// # Examples
///
/// ```
/// use detdiv_sequence::Symbol;
///
/// let s = Symbol::new(3);
/// assert_eq!(s.id(), 3);
/// assert_eq!(format!("{s}"), "3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Symbol(u32);

impl Symbol {
    /// Creates a symbol with the given dense identifier.
    #[inline]
    pub const fn new(id: u32) -> Self {
        Symbol(id)
    }

    /// Returns the dense identifier of this symbol.
    #[inline]
    pub const fn id(self) -> u32 {
        self.0
    }

    /// Returns the identifier as a `usize`, convenient for indexing
    /// per-symbol tables such as one-hot encodings or transition-matrix
    /// rows.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for Symbol {
    #[inline]
    fn from(id: u32) -> Self {
        Symbol(id)
    }
}

impl From<Symbol> for u32 {
    #[inline]
    fn from(sym: Symbol) -> Self {
        sym.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Converts a slice of raw identifiers into a symbol vector.
///
/// This is a convenience for constructing test fixtures and for adapting
/// externally parsed integer streams.
///
/// # Examples
///
/// ```
/// use detdiv_sequence::{symbols, Symbol};
///
/// assert_eq!(symbols(&[1, 2, 1]), vec![Symbol::new(1), Symbol::new(2), Symbol::new(1)]);
/// ```
pub fn symbols(ids: &[u32]) -> Vec<Symbol> {
    ids.iter().copied().map(Symbol::new).collect()
}

/// A closed set of symbols `0..size` that a stream may draw from.
///
/// The evaluation data of Tan & Maxion (DSN 2005) uses an alphabet of
/// size 8 (§5.3). The alphabet size bounds one-hot encodings, transition
/// matrices and the per-position branching factor of sequence synthesis;
/// it does not otherwise affect the detectability of foreign sequences
/// (as the paper notes).
///
/// # Examples
///
/// ```
/// use detdiv_sequence::{Alphabet, Symbol};
///
/// let a = Alphabet::new(8);
/// assert_eq!(a.size(), 8);
/// assert!(a.contains(Symbol::new(7)));
/// assert!(!a.contains(Symbol::new(8)));
/// assert_eq!(a.symbols().count(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Alphabet {
    size: u32,
}

impl Alphabet {
    /// Creates an alphabet over the identifiers `0..size`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero; an empty alphabet admits no streams.
    pub fn new(size: u32) -> Self {
        assert!(size > 0, "alphabet size must be positive");
        Alphabet { size }
    }

    /// Number of distinct symbols in the alphabet.
    #[inline]
    pub const fn size(&self) -> u32 {
        self.size
    }

    /// Number of distinct symbols as a `usize`, for sizing tables.
    #[inline]
    pub const fn len(&self) -> usize {
        self.size as usize
    }

    /// Always `false`: alphabets are non-empty by construction.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        false
    }

    /// Whether `symbol` is a member of this alphabet.
    #[inline]
    pub const fn contains(&self, symbol: Symbol) -> bool {
        symbol.id() < self.size
    }

    /// Whether every element of `stream` is a member of this alphabet.
    pub fn contains_all(&self, stream: &[Symbol]) -> bool {
        stream.iter().all(|&s| self.contains(s))
    }

    /// Iterates over every symbol of the alphabet in identifier order.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.size).map(Symbol::new)
    }
}

impl fmt::Display for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "alphabet(0..{})", self.size)
    }
}

/// An interning table mapping free-form tokens (command names, system-call
/// mnemonics) to dense [`Symbol`] identifiers and back.
///
/// Used by the trace substrate to turn textual audit records into the
/// categorical streams the detectors consume, and by examples that mirror
/// the paper's Figure 7 (`cd <1> ls laf tar` command sequences).
///
/// # Examples
///
/// ```
/// use detdiv_sequence::SymbolTable;
///
/// let mut table = SymbolTable::new();
/// let cd = table.intern("cd");
/// let ls = table.intern("ls");
/// assert_ne!(cd, ls);
/// assert_eq!(table.intern("cd"), cd); // stable
/// assert_eq!(table.name(cd), Some("cd"));
/// assert_eq!(table.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymbolTable {
    names: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, Symbol>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Returns the symbol for `name`, interning it if unseen.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.index.get(name) {
            return sym;
        }
        let sym = Symbol::new(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), sym);
        sym
    }

    /// Interns every token of `names` in order and returns the stream.
    pub fn intern_all(&mut self, names: &[&str]) -> Vec<Symbol> {
        names.iter().map(|n| self.intern(n)).collect()
    }

    /// Returns the symbol previously interned for `name`, if any.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.index.get(name).copied()
    }

    /// Returns the token that was interned as `symbol`, if any.
    pub fn name(&self, symbol: Symbol) -> Option<&str> {
        self.names.get(symbol.index()).map(String::as_str)
    }

    /// Number of distinct interned tokens.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no token has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The alphabet spanned by the interned tokens.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty (an empty alphabet is not
    /// representable).
    pub fn alphabet(&self) -> Alphabet {
        Alphabet::new(self.names.len() as u32)
    }

    /// Rebuilds the reverse index after deserialization.
    ///
    /// `serde` skips the reverse map; call this once on a deserialized
    /// table before using [`SymbolTable::intern`] or
    /// [`SymbolTable::lookup`].
    pub fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), Symbol::new(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_roundtrip() {
        let s = Symbol::new(42);
        assert_eq!(u32::from(s), 42);
        assert_eq!(Symbol::from(42u32), s);
        assert_eq!(s.index(), 42usize);
    }

    #[test]
    fn symbol_ordering_and_hash_are_by_id() {
        assert!(Symbol::new(1) < Symbol::new(2));
        assert_eq!(Symbol::new(5), Symbol::new(5));
    }

    #[test]
    fn symbols_helper_builds_streams() {
        let s = symbols(&[0, 1, 2]);
        assert_eq!(s.len(), 3);
        assert_eq!(s[2], Symbol::new(2));
    }

    #[test]
    fn alphabet_membership() {
        let a = Alphabet::new(3);
        assert!(a.contains(Symbol::new(0)));
        assert!(a.contains(Symbol::new(2)));
        assert!(!a.contains(Symbol::new(3)));
        assert!(a.contains_all(&symbols(&[0, 1, 2, 1])));
        assert!(!a.contains_all(&symbols(&[0, 3])));
    }

    #[test]
    #[should_panic(expected = "alphabet size must be positive")]
    fn alphabet_rejects_zero() {
        let _ = Alphabet::new(0);
    }

    #[test]
    fn alphabet_symbol_iteration_is_dense() {
        let a = Alphabet::new(4);
        let ids: Vec<u32> = a.symbols().map(Symbol::id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn symbol_table_interns_stably() {
        let mut t = SymbolTable::new();
        let a = t.intern("open");
        let b = t.intern("read");
        let c = t.intern("open");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(t.name(b), Some("read"));
        assert_eq!(t.lookup("read"), Some(b));
        assert_eq!(t.lookup("write"), None);
        assert_eq!(t.alphabet().size(), 2);
    }

    #[test]
    fn symbol_table_intern_all_preserves_order() {
        let mut t = SymbolTable::new();
        let stream = t.intern_all(&["cd", "ls", "cd", "tar"]);
        assert_eq!(stream[0], stream[2]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn symbol_table_rebuild_index() {
        let mut t = SymbolTable::new();
        t.intern("a");
        t.intern("b");
        let mut clone = SymbolTable {
            names: t.names.clone(),
            index: HashMap::new(),
        };
        clone.rebuild_index();
        assert_eq!(clone.lookup("b"), t.lookup("b"));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Alphabet::new(8).to_string(), "alphabet(0..8)");
        assert_eq!(Symbol::new(7).to_string(), "7");
    }
}

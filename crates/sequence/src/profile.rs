//! Multi-length stream profiles and foreign/minimal-foreign analysis.
//!
//! The anomaly of the study is the *minimal foreign sequence* (MFS, §5.1):
//! a sequence of length `N` that does not occur in the training data, all
//! of whose proper subsequences do. Deciding minimality requires knowing,
//! for several window lengths at once, which sequences the training data
//! contains and how often — that is what a [`StreamProfile`] provides.

use std::fmt;

use crate::error::SequenceError;
use crate::ngram::{NgramCounter, DEFAULT_RARE_THRESHOLD};
use crate::symbol::Symbol;

/// Occurrence profile of a stream at every window length `1..=max_len`.
///
/// # Examples
///
/// ```
/// use detdiv_sequence::{symbols, StreamProfile};
///
/// let train = symbols(&[1, 2, 3, 4, 1, 2, 4, 2, 3, 4]);
/// let profile = StreamProfile::build(&train, 3).unwrap();
/// assert!(profile.contains(&symbols(&[1, 2, 3])));
/// assert!(profile.is_foreign(&symbols(&[3, 2, 1])));
/// // (4,2) occurs and (2,4) occurs, but (4,2,4) never does: an MFS.
/// assert!(profile.is_minimal_foreign(&symbols(&[4, 2, 4])));
/// ```
#[derive(Debug, Clone)]
pub struct StreamProfile {
    max_len: usize,
    counters: Vec<NgramCounter>,
    stream_len: usize,
}

impl StreamProfile {
    /// Profiles `stream` at every window length `1..=max_len`.
    ///
    /// # Errors
    ///
    /// Returns [`SequenceError::InvalidWindow`] if `max_len` is zero, and
    /// [`SequenceError::StreamTooShort`] if the stream is shorter than
    /// `max_len` (no window of the maximal length would fit).
    pub fn build(stream: &[Symbol], max_len: usize) -> Result<Self, SequenceError> {
        if max_len == 0 {
            return Err(SequenceError::InvalidWindow { window: max_len });
        }
        if stream.len() < max_len {
            return Err(SequenceError::StreamTooShort {
                len: stream.len(),
                needed: max_len,
            });
        }
        let counters = (1..=max_len)
            .map(|l| NgramCounter::from_stream(stream, l))
            .collect();
        Ok(StreamProfile {
            max_len,
            counters,
            stream_len: stream.len(),
        })
    }

    /// The largest window length profiled.
    #[inline]
    pub const fn max_len(&self) -> usize {
        self.max_len
    }

    /// Length of the profiled stream.
    #[inline]
    pub const fn stream_len(&self) -> usize {
        self.stream_len
    }

    /// The counter for window length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or exceeds [`StreamProfile::max_len`].
    pub fn counter(&self, len: usize) -> &NgramCounter {
        assert!(
            (1..=self.max_len).contains(&len),
            "window length {len} outside profiled range 1..={}",
            self.max_len
        );
        &self.counters[len - 1]
    }

    /// Whether `gram` occurs in the stream (any profiled length).
    ///
    /// # Panics
    ///
    /// Panics if `gram.len()` is outside the profiled range.
    pub fn contains(&self, gram: &[Symbol]) -> bool {
        self.counter(gram.len()).count(gram) > 0
    }

    /// Occurrence count of `gram`.
    ///
    /// # Panics
    ///
    /// Panics if `gram.len()` is outside the profiled range.
    pub fn count(&self, gram: &[Symbol]) -> u64 {
        self.counter(gram.len()).count(gram)
    }

    /// Whether `gram` is *foreign*: it never occurs in the stream (§5.1).
    ///
    /// # Panics
    ///
    /// Panics if `gram.len()` is outside the profiled range.
    pub fn is_foreign(&self, gram: &[Symbol]) -> bool {
        !self.contains(gram)
    }

    /// Whether `gram` is *rare*: it occurs with relative frequency below
    /// `threshold` (§5.3; the paper uses 0.5 %).
    ///
    /// # Panics
    ///
    /// Panics if `gram.len()` is outside the profiled range.
    pub fn is_rare(&self, gram: &[Symbol], threshold: f64) -> bool {
        self.counter(gram.len()).is_rare(gram, threshold)
    }

    /// Whether `gram` is rare under the paper's 0.5 % definition.
    pub fn is_rare_default(&self, gram: &[Symbol]) -> bool {
        self.is_rare(gram, DEFAULT_RARE_THRESHOLD)
    }

    /// Whether `gram` is a *minimal foreign sequence*: foreign, while all
    /// of its proper contiguous subsequences occur (§5.1).
    ///
    /// Minimality reduces to a two-window check: every proper contiguous
    /// subsequence of `gram` is a window of either its length-(N−1) prefix
    /// or its length-(N−1) suffix, so `gram` is an MFS iff it is foreign
    /// and both of those occur in the stream. Length-1 grams cannot be
    /// minimal foreign (a single element cannot be both foreign and have
    /// occurring subsequences — see the paper's "undefined region").
    ///
    /// # Panics
    ///
    /// Panics if `gram.len()` is outside the profiled range.
    pub fn is_minimal_foreign(&self, gram: &[Symbol]) -> bool {
        if gram.len() < 2 {
            return false;
        }
        self.is_foreign(gram) && self.contains(&gram[..gram.len() - 1]) && self.contains(&gram[1..])
    }

    /// Whether `gram` is an MFS *composed of rare subsequences*: minimal
    /// foreign, and both of its length-(N−1) windows are rare at
    /// `threshold` (§5.4.2's anomaly construction requirement).
    ///
    /// For `N == 2` the length-1 windows are single symbols; the paper's
    /// alphabet makes every symbol common, so composition-of-rare is
    /// instead interpreted at the smallest compound length: the gram
    /// itself must be foreign and each symbol must occur (which minimality
    /// already guarantees).
    ///
    /// # Panics
    ///
    /// Panics if `gram.len()` is outside the profiled range.
    pub fn is_rare_composed_mfs(&self, gram: &[Symbol], threshold: f64) -> bool {
        if !self.is_minimal_foreign(gram) {
            return false;
        }
        if gram.len() == 2 {
            return true;
        }
        self.is_rare(&gram[..gram.len() - 1], threshold) && self.is_rare(&gram[1..], threshold)
    }
}

impl fmt::Display for StreamProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stream-profile(stream_len={}, max_len={})",
            self.stream_len, self.max_len
        )
    }
}

/// Positions in `test` at which a minimal foreign sequence of length `len`
/// (relative to the profiled training stream) begins.
///
/// This is the census tool behind the paper's §4.1 observation that
/// "natural data was found to be replete with minimal foreign sequences of
/// varying lengths".
///
/// # Errors
///
/// Returns [`SequenceError::InvalidWindow`] when `len` is zero, below 2,
/// or exceeds the profile's maximal profiled length.
///
/// # Examples
///
/// ```
/// use detdiv_sequence::{symbols, StreamProfile, minimal_foreign_positions};
///
/// let train = symbols(&[1, 2, 3, 1, 2, 3, 1, 2, 3]);
/// let profile = StreamProfile::build(&train, 3).unwrap();
/// // (2,3,2): foreign; (2,3) and (3,2)... (3,2) is foreign too, so not minimal.
/// // (3,1,2) occurs; (1,2,1) is foreign and minimal? (1,2) occurs, (2,1) doesn't.
/// let test = symbols(&[1, 2, 3, 1, 3, 1, 2]);
/// let hits = minimal_foreign_positions(&profile, &test, 2).unwrap();
/// assert_eq!(hits, vec![3]); // (1,3) foreign, both symbols occur
/// ```
pub fn minimal_foreign_positions(
    profile: &StreamProfile,
    test: &[Symbol],
    len: usize,
) -> Result<Vec<usize>, SequenceError> {
    if len < 2 || len > profile.max_len() {
        return Err(SequenceError::InvalidWindow { window: len });
    }
    if test.len() < len {
        return Ok(Vec::new());
    }
    Ok(test
        .windows(len)
        .enumerate()
        .filter(|(_, w)| profile.is_minimal_foreign(w))
        .map(|(i, _)| i)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::symbols;

    fn cycle_stream(reps: usize) -> Vec<Symbol> {
        let mut v = Vec::with_capacity(reps * 4);
        for _ in 0..reps {
            v.extend(symbols(&[1, 2, 3, 4]));
        }
        v
    }

    #[test]
    fn build_rejects_zero_and_short() {
        assert!(matches!(
            StreamProfile::build(&symbols(&[1, 2]), 0),
            Err(SequenceError::InvalidWindow { .. })
        ));
        assert!(matches!(
            StreamProfile::build(&symbols(&[1, 2]), 3),
            Err(SequenceError::StreamTooShort { .. })
        ));
    }

    #[test]
    fn counters_cover_all_lengths() {
        let p = StreamProfile::build(&cycle_stream(10), 4).unwrap();
        for l in 1..=4 {
            assert_eq!(p.counter(l).ngram_len(), l);
            assert!(!p.counter(l).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "outside profiled range")]
    fn counter_out_of_range_panics() {
        let p = StreamProfile::build(&cycle_stream(4), 2).unwrap();
        let _ = p.counter(3);
    }

    #[test]
    fn foreignness_matches_occurrence() {
        let p = StreamProfile::build(&cycle_stream(10), 3).unwrap();
        assert!(p.contains(&symbols(&[2, 3, 4])));
        assert!(p.is_foreign(&symbols(&[2, 4, 3])));
        assert!(!p.is_foreign(&symbols(&[4, 1, 2])));
    }

    #[test]
    fn minimal_foreign_requires_both_flanks() {
        // Stream: cycle 1234 plus one rare tail excursion 2,4.
        let mut s = cycle_stream(50);
        s.extend(symbols(&[2, 4]));
        let p = StreamProfile::build(&s, 3).unwrap();
        // (2,1,3): (2,1) foreign => not minimal even though (2,1,3) foreign.
        assert!(p.is_foreign(&symbols(&[2, 1, 3])));
        assert!(!p.is_minimal_foreign(&symbols(&[2, 1, 3])));
        // (1,2,4): (1,2) occurs, (2,4) occurs, full gram foreign => minimal.
        assert!(p.is_minimal_foreign(&symbols(&[1, 2, 4])));
        // An occurring gram is never minimal foreign.
        assert!(!p.is_minimal_foreign(&symbols(&[1, 2, 3])));
    }

    #[test]
    fn length_one_never_minimal_foreign() {
        let p = StreamProfile::build(&cycle_stream(5), 2).unwrap();
        assert!(!p.is_minimal_foreign(&symbols(&[9])));
        assert!(!p.is_minimal_foreign(&symbols(&[1])));
    }

    #[test]
    fn rare_composition_check() {
        // Common cycle plus exactly one occurrence of 1,3 and 3,2 material.
        let mut s = cycle_stream(200);
        s.extend(symbols(&[1, 3, 2, 3, 4]));
        s.extend(cycle_stream(200));
        let p = StreamProfile::build(&s, 3).unwrap();
        // (2,3,2): (2,3) occurs commonly, (3,2) occurs once in the
        // excursion, and the full trigram never occurs => minimal foreign.
        let gram = symbols(&[2, 3, 2]);
        assert!(p.is_minimal_foreign(&gram));
        // Composed of rare? (2,3) is common (cycle), so it fails the
        // rare-composition requirement at threshold 0.5 %.
        assert!(!p.is_rare_composed_mfs(&gram, DEFAULT_RARE_THRESHOLD));
        // But at a generous threshold where (2,3) counts as rare, it passes.
        assert!(p.is_rare_composed_mfs(&gram, 0.9));
    }

    #[test]
    fn rare_composed_len2_reduces_to_minimality() {
        let mut s = cycle_stream(100);
        s.push(Symbol::new(1)); // make (4,1),(1,1)? no: cycle already ends 4, push 1 keeps it clean
        let p = StreamProfile::build(&s, 2).unwrap();
        let foreign_bigram = symbols(&[2, 4]);
        assert!(p.is_foreign(&foreign_bigram));
        assert!(p.is_minimal_foreign(&foreign_bigram));
        assert!(p.is_rare_composed_mfs(&foreign_bigram, DEFAULT_RARE_THRESHOLD));
    }

    #[test]
    fn census_finds_planted_mfs() {
        let train = cycle_stream(100);
        let p = StreamProfile::build(&train, 4).unwrap();
        // Test stream: clean cycle with a foreign bigram (3,1) at index 6
        // ((3,1): 3 occurs, 1 occurs, (3,1) never occurs in cycle 1234).
        let test = symbols(&[1, 2, 3, 4, 1, 2, 3, 1, 2, 3, 4]);
        let hits = minimal_foreign_positions(&p, &test, 2).unwrap();
        assert_eq!(hits, vec![6]);
    }

    #[test]
    fn census_rejects_bad_lengths() {
        let p = StreamProfile::build(&cycle_stream(5), 3).unwrap();
        assert!(minimal_foreign_positions(&p, &[], 1).is_err());
        assert!(minimal_foreign_positions(&p, &[], 4).is_err());
    }

    #[test]
    fn census_short_test_stream_is_empty() {
        let p = StreamProfile::build(&cycle_stream(5), 3).unwrap();
        let hits = minimal_foreign_positions(&p, &symbols(&[1]), 2).unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn display_is_nonempty() {
        let p = StreamProfile::build(&cycle_stream(5), 2).unwrap();
        assert!(!p.to_string().is_empty());
    }
}

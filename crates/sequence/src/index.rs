//! A suffix-automaton substring index with occurrence counts.
//!
//! [`NgramSet`]/[`NgramCounter`](crate::NgramCounter) answer
//! presence/frequency questions for **one fixed window length each**;
//! profiling a stream at every length up to `L` therefore costs
//! `O(n · L)` time and memory. A [`SubstringIndex`] is the classic
//! alternative: one suffix automaton over the stream, built in
//! `O(n log |Σ|)`, answering `contains` / `count` for patterns of **any
//! length** in `O(len(pattern))` — which makes the minimal-foreign-
//! sequence census and the corpus verifier independent of a maximal
//! profiled length.
//!
//! [`NgramSet`]: crate::NgramSet

use crate::symbol::Symbol;

/// One automaton state.
#[derive(Debug, Clone)]
struct State {
    /// Length of the longest substring in this state's class.
    len: u32,
    /// Suffix link (`-1` for the root).
    link: i32,
    /// Outgoing transitions, sorted by symbol for binary search.
    trans: Vec<(u32, u32)>,
    /// Occurrence count of the substrings in this state's class.
    count: u64,
}

impl State {
    fn get(&self, symbol: u32) -> Option<u32> {
        self.trans
            .binary_search_by_key(&symbol, |&(s, _)| s)
            .ok()
            .map(|i| self.trans[i].1)
    }

    fn set(&mut self, symbol: u32, to: u32) {
        match self.trans.binary_search_by_key(&symbol, |&(s, _)| s) {
            Ok(i) => self.trans[i].1 = to,
            Err(i) => self.trans.insert(i, (symbol, to)),
        }
    }
}

/// A substring index over one stream: presence and occurrence counts
/// for patterns of arbitrary length.
///
/// # Examples
///
/// ```
/// use detdiv_sequence::{symbols, SubstringIndex};
///
/// let mut stream = Vec::new();
/// for _ in 0..10 { stream.extend(symbols(&[1, 2, 3, 4])); }
/// stream.extend(symbols(&[2, 4])); // one rare excursion
///
/// let index = SubstringIndex::build(&stream);
/// assert!(index.contains(&symbols(&[3, 4, 1])));
/// assert_eq!(index.count(&symbols(&[2, 4])), 1);
/// assert_eq!(index.count(&symbols(&[1, 3])), 0);
/// // (1,2,4): both flanks occur, the whole does not — an MFS, decided
/// // without choosing any profiling length in advance.
/// assert!(index.is_minimal_foreign(&symbols(&[1, 2, 4])));
/// ```
#[derive(Debug, Clone)]
pub struct SubstringIndex {
    states: Vec<State>,
    stream_len: usize,
}

impl SubstringIndex {
    /// Builds the index over `stream` (classic online suffix-automaton
    /// construction plus a count-propagation pass).
    pub fn build(stream: &[Symbol]) -> Self {
        let mut states = Vec::with_capacity(2 * stream.len().max(1));
        states.push(State {
            len: 0,
            link: -1,
            trans: Vec::new(),
            count: 0,
        });
        let mut last: u32 = 0;

        for &sym in stream {
            let c = sym.id();
            let cur = states.len() as u32;
            states.push(State {
                len: states[last as usize].len + 1,
                link: 0,
                trans: Vec::new(),
                count: 1, // a fresh endpoint
            });
            let mut p = last as i32;
            while p >= 0 && states[p as usize].get(c).is_none() {
                states[p as usize].set(c, cur);
                p = states[p as usize].link;
            }
            if p < 0 {
                states[cur as usize].link = 0;
            } else {
                let q = states[p as usize]
                    .get(c)
                    .expect("loop exited on a transition");
                if states[p as usize].len + 1 == states[q as usize].len {
                    states[cur as usize].link = q as i32;
                } else {
                    // Clone q.
                    let clone = states.len() as u32;
                    let mut cloned = states[q as usize].clone();
                    cloned.len = states[p as usize].len + 1;
                    cloned.count = 0; // clones get counts by propagation only
                    states.push(cloned);
                    while p >= 0 && states[p as usize].get(c) == Some(q) {
                        states[p as usize].set(c, clone);
                        p = states[p as usize].link;
                    }
                    states[q as usize].link = clone as i32;
                    states[cur as usize].link = clone as i32;
                }
            }
            last = cur;
        }

        // Propagate endpoint counts up the suffix-link tree in order of
        // decreasing len (counting sort by len).
        let max_len = stream.len();
        let mut buckets = vec![0usize; max_len + 2];
        for s in &states {
            buckets[s.len as usize] += 1;
        }
        for i in 1..buckets.len() {
            buckets[i] += buckets[i - 1];
        }
        let mut order = vec![0u32; states.len()];
        for (i, s) in states.iter().enumerate() {
            buckets[s.len as usize] -= 1;
            order[buckets[s.len as usize]] = i as u32;
        }
        for &i in order.iter().rev() {
            let link = states[i as usize].link;
            if link >= 0 {
                let add = states[i as usize].count;
                states[link as usize].count += add;
            }
        }

        SubstringIndex {
            states,
            stream_len: stream.len(),
        }
    }

    /// Length of the indexed stream.
    pub fn stream_len(&self) -> usize {
        self.stream_len
    }

    /// Number of automaton states (diagnostic; at most `2n − 1`).
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    fn walk(&self, gram: &[Symbol]) -> Option<usize> {
        let mut state = 0usize;
        for &sym in gram {
            state = self.states[state].get(sym.id())? as usize;
        }
        Some(state)
    }

    /// Whether `gram` occurs in the stream. The empty pattern occurs by
    /// convention.
    pub fn contains(&self, gram: &[Symbol]) -> bool {
        self.walk(gram).is_some()
    }

    /// Number of occurrences of `gram` in the stream (0 for absent or
    /// over-long patterns; `stream_len + 1` conventionally for the empty
    /// pattern is avoided by returning the window count).
    pub fn count(&self, gram: &[Symbol]) -> u64 {
        if gram.is_empty() {
            return self.stream_len as u64;
        }
        self.walk(gram).map(|s| self.states[s].count).unwrap_or(0)
    }

    /// Relative frequency among the stream's windows of `gram.len()`.
    pub fn relative_frequency(&self, gram: &[Symbol]) -> f64 {
        let windows = self.stream_len.saturating_sub(gram.len().saturating_sub(1));
        if windows == 0 || gram.is_empty() {
            return 0.0;
        }
        self.count(gram) as f64 / windows as f64
    }

    /// Whether `gram` never occurs — a *foreign* sequence.
    pub fn is_foreign(&self, gram: &[Symbol]) -> bool {
        !self.contains(gram)
    }

    /// Whether `gram` occurs with relative frequency strictly below
    /// `threshold` — a *rare* sequence.
    pub fn is_rare(&self, gram: &[Symbol], threshold: f64) -> bool {
        let c = self.count(gram);
        c > 0 && self.relative_frequency(gram) < threshold
    }

    /// Whether `gram` is a *minimal foreign sequence*: foreign while
    /// both its length-(N−1) windows occur (see
    /// [`StreamProfile::is_minimal_foreign`] for the reduction).
    ///
    /// [`StreamProfile::is_minimal_foreign`]: crate::StreamProfile::is_minimal_foreign
    pub fn is_minimal_foreign(&self, gram: &[Symbol]) -> bool {
        gram.len() >= 2
            && self.is_foreign(gram)
            && self.contains(&gram[..gram.len() - 1])
            && self.contains(&gram[1..])
    }
}

impl std::fmt::Display for SubstringIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "substring-index(stream_len={}, states={})",
            self.stream_len,
            self.states.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ngram::NgramCounter;
    use crate::symbol::symbols;

    #[test]
    fn counts_match_brute_force_on_small_streams() {
        let s = symbols(&[1, 2, 1, 2, 1, 3, 1, 2]);
        let idx = SubstringIndex::build(&s);
        for len in 1..=4 {
            let counter = NgramCounter::from_stream(&s, len);
            for w in s.windows(len) {
                assert_eq!(idx.count(w), counter.count(w), "gram {w:?}");
            }
        }
        assert_eq!(idx.count(&symbols(&[3, 3])), 0);
        assert_eq!(idx.count(&symbols(&[2, 1, 3])), 1);
    }

    #[test]
    fn contains_and_foreign() {
        let s = symbols(&[0, 1, 2, 3, 0, 1, 2, 3]);
        let idx = SubstringIndex::build(&s);
        assert!(idx.contains(&symbols(&[1, 2, 3, 0])));
        assert!(idx.is_foreign(&symbols(&[3, 2])));
        assert!(idx.contains(&[]));
        // Patterns longer than the stream are foreign.
        assert!(idx.is_foreign(&symbols(&[0, 1, 2, 3, 0, 1, 2, 3, 0])));
    }

    #[test]
    fn empty_stream() {
        let idx = SubstringIndex::build(&[]);
        assert_eq!(idx.stream_len(), 0);
        assert!(idx.is_foreign(&symbols(&[1])));
        assert_eq!(idx.count(&symbols(&[1])), 0);
    }

    #[test]
    fn minimal_foreign_agrees_with_profile() {
        use crate::profile::StreamProfile;
        let mut s = Vec::new();
        for _ in 0..50 {
            s.extend(symbols(&[1, 2, 3, 4]));
        }
        s.extend(symbols(&[2, 4]));
        let idx = SubstringIndex::build(&s);
        let profile = StreamProfile::build(&s, 4).unwrap();
        for probe in [
            symbols(&[1, 2, 4]),
            symbols(&[2, 4, 1]),
            symbols(&[4, 2, 4]),
            symbols(&[1, 2, 3]),
            symbols(&[2, 1, 3]),
        ] {
            assert_eq!(
                idx.is_minimal_foreign(&probe),
                profile.is_minimal_foreign(&probe),
                "{probe:?}"
            );
        }
    }

    #[test]
    fn rare_and_frequency() {
        let mut s = Vec::new();
        for _ in 0..500 {
            s.extend(symbols(&[0, 1]));
        }
        s.extend(symbols(&[2, 3]));
        let idx = SubstringIndex::build(&s);
        assert!(idx.is_rare(&symbols(&[2, 3]), 0.005));
        assert!(!idx.is_rare(&symbols(&[0, 1]), 0.005));
        assert!(!idx.is_rare(&symbols(&[3, 2]), 0.005)); // foreign, not rare
        let counter = NgramCounter::from_stream(&s, 2);
        let g = symbols(&[0, 1]);
        assert!((idx.relative_frequency(&g) - counter.relative_frequency(&g)).abs() < 1e-12);
    }

    #[test]
    fn state_count_is_linear() {
        let mut s = Vec::new();
        for _ in 0..1000 {
            s.extend(symbols(&[0, 1, 2, 3, 4, 5, 6, 7]));
        }
        let idx = SubstringIndex::build(&s);
        assert!(idx.state_count() <= 2 * s.len());
        assert!(!idx.to_string().is_empty());
    }

    #[test]
    fn arbitrary_length_queries_beyond_any_profile() {
        // A 40-element pattern query — far beyond what per-length
        // profiling would be built for.
        let mut s = Vec::new();
        for _ in 0..100 {
            s.extend(symbols(&[0, 1, 2, 3]));
        }
        let idx = SubstringIndex::build(&s);
        let long: Vec<_> = s[..40].to_vec();
        assert!(idx.contains(&long));
        let brute = s.windows(40).filter(|w| *w == long.as_slice()).count() as u64;
        assert_eq!(idx.count(&long), brute);
        let mut corrupted = long.clone();
        corrupted[20] = Symbol::new(7);
        assert!(idx.is_foreign(&corrupted));
    }
}

//! Property tests for the evaluation framework's algebra and for the
//! transparency of the telemetry instrumentation layer.

use detdiv_core::{
    alarms_at, analyze_alarms, classify_scores, threshold_sweep, CellStatus, Classification,
    CoverageMap, DiversityMatrix, IncidentSpan, InstrumentedDetector, SequenceAnomalyDetector,
    TrainedModel,
};
use detdiv_sequence::{symbols, Symbol};
use proptest::prelude::*;

/// A deterministic toy detector for transparency properties: response
/// is a pure function of the window content (`first id mod 10 / 10`,
/// maximal when the window starts with a multiple of ten).
#[derive(Debug, Clone)]
struct ModTen {
    name: &'static str,
    window: usize,
    trained_events: usize,
}

impl TrainedModel for ModTen {
    fn name(&self) -> &str {
        self.name
    }
    fn window(&self) -> usize {
        self.window
    }
    fn scores(&self, test: &[Symbol]) -> Vec<f64> {
        if test.len() < self.window {
            return Vec::new();
        }
        test.windows(self.window)
            .map(|w| {
                let m = w[0].id() % 10;
                if m == 0 {
                    1.0
                } else {
                    f64::from(m) / 10.0
                }
            })
            .collect()
    }
}

impl SequenceAnomalyDetector for ModTen {
    fn train(&mut self, training: &[Symbol]) {
        self.trained_events += training.len();
    }
}

fn arb_status() -> impl Strategy<Value = CellStatus> {
    prop_oneof![
        Just(CellStatus::Detect),
        Just(CellStatus::Weak),
        Just(CellStatus::Blind),
        Just(CellStatus::Undefined),
        Just(CellStatus::Failed),
    ]
}

fn arb_map(name: &'static str) -> impl Strategy<Value = CoverageMap> {
    prop::collection::vec(arb_status(), 9).prop_map(move |cells| {
        let mut m = CoverageMap::new(name, 2..=4, 2..=4);
        let mut it = cells.into_iter();
        for a in 2..=4 {
            for w in 2..=4 {
                m.set(a, w, it.next().expect("9 cells")).unwrap();
            }
        }
        m
    })
}

proptest! {
    /// Union and intersection are commutative in detections, and bound
    /// the individual maps: |a ∩ b| <= |a| <= |a ∪ b|.
    #[test]
    fn map_algebra_bounds(a in arb_map("a"), b in arb_map("b")) {
        let union = a.union(&b).unwrap();
        let inter = a.intersection(&b).unwrap();
        prop_assert_eq!(union.detection_count(), b.union(&a).unwrap().detection_count());
        prop_assert_eq!(inter.detection_count(), b.intersection(&a).unwrap().detection_count());
        prop_assert!(inter.detection_count() <= a.detection_count());
        prop_assert!(a.detection_count() <= union.detection_count());
        // Inclusion-exclusion on detection regions.
        prop_assert_eq!(
            union.detection_count() + inter.detection_count(),
            a.detection_count() + b.detection_count()
        );
    }

    /// Subset is reflexive and consistent with gain: a ⊆ b iff b gains
    /// nothing from a.
    #[test]
    fn subset_gain_consistency(a in arb_map("a"), b in arb_map("b")) {
        prop_assert!(a.is_subset_of(&a).unwrap());
        prop_assert_eq!(a.is_subset_of(&b).unwrap(), b.gain_from(&a).unwrap() == 0);
        // Union with a subset changes nothing.
        if a.is_subset_of(&b).unwrap() {
            prop_assert_eq!(a.union(&b).unwrap().detection_count(), b.detection_count());
        }
    }

    /// Jaccard is symmetric, in [0, 1], and 1 exactly when the detection
    /// regions coincide.
    #[test]
    fn jaccard_properties(a in arb_map("a"), b in arb_map("b")) {
        let j = a.jaccard(&b).unwrap();
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert_eq!(j, b.jaccard(&a).unwrap());
        let same_region = a.is_subset_of(&b).unwrap() && b.is_subset_of(&a).unwrap();
        prop_assert_eq!(j == 1.0, same_region);
    }

    /// The diversity matrix agrees with the pairwise map operations.
    #[test]
    fn diversity_matrix_agrees_with_maps(a in arb_map("a"), b in arb_map("b"), c in arb_map("c")) {
        let maps = [a, b, c];
        let m = DiversityMatrix::from_maps(&maps).unwrap();
        for i in 0..3 {
            prop_assert_eq!(m.detections(i).unwrap(), maps[i].detection_count());
            for j in 0..3 {
                if i != j {
                    prop_assert_eq!(m.gain(i, j).unwrap(), maps[i].gain_from(&maps[j]).unwrap());
                    prop_assert!((m.jaccard(i, j).unwrap() - maps[i].jaccard(&maps[j]).unwrap()).abs() < 1e-12);
                }
            }
        }
    }

    /// Classification matches the definition for arbitrary responses.
    #[test]
    fn classification_matches_definition(
        scores in prop::collection::vec(0.0f64..=1.0, 5..30),
        first in 0usize..5,
        len in 1usize..5,
        floor in 0.5f64..=1.0,
    ) {
        let last = (first + len - 1).min(scores.len() - 1);
        let first = first.min(last);
        let span = IncidentSpan::from_bounds(first, last);
        let outcome = classify_scores(&scores, span, floor).unwrap();
        let in_span = &scores[first..=last];
        let max = in_span.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let expected = if max >= floor {
            Classification::Capable
        } else if max > 0.0 {
            Classification::Weak
        } else {
            Classification::Blind
        };
        prop_assert_eq!(outcome.classification(), expected);
        prop_assert_eq!(outcome.max_response(), max);
        prop_assert!(span.contains(outcome.max_position()));
    }

    /// Alarm accounting: hits + false alarms equals total alarms, and
    /// the false-alarm rate is within [0, 1].
    #[test]
    fn alarm_accounting_balances(
        scores in prop::collection::vec(0.0f64..=1.0, 6..40),
        threshold in 0.0f64..=1.0,
        first in 0usize..3,
        len in 1usize..4,
    ) {
        let last = (first + len - 1).min(scores.len() - 1);
        let first = first.min(last);
        let span = IncidentSpan::from_bounds(first, last);
        let alarms = alarms_at(&scores, threshold);
        let total_alarms = alarms.iter().filter(|&&a| a).count();
        let a = analyze_alarms(&alarms, span).unwrap();
        prop_assert_eq!(a.span_alarms + a.false_alarms, total_alarms);
        prop_assert_eq!(a.hit, a.span_alarms > 0);
        prop_assert!((0.0..=1.0).contains(&a.false_alarm_rate()));
        prop_assert_eq!(a.negatives, scores.len() - span.len());
    }

    /// Threshold sweeps are monotone: false-alarm rates never increase
    /// with the threshold, and once the hit is lost it stays lost.
    #[test]
    fn sweeps_are_monotone(
        scores in prop::collection::vec(0.0f64..=1.0, 6..40),
        first in 0usize..3,
    ) {
        let span = IncidentSpan::from_bounds(first, first + 2);
        let thresholds: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
        let pts = threshold_sweep(&scores, span, &thresholds).unwrap();
        for pair in pts.windows(2) {
            prop_assert!(pair[1].false_alarm_rate <= pair[0].false_alarm_rate + 1e-12);
            prop_assert!(!pair[1].hit || pair[0].hit);
        }
    }

    /// The telemetry wrapper is score-transparent for arbitrary traces
    /// and windows: scores, name, window, floor and minimum window all
    /// pass through bit-for-bit.
    #[test]
    fn instrumented_wrapper_is_score_transparent(
        trace in prop::collection::vec(0u32..50, 0..80),
        training in prop::collection::vec(0u32..50, 0..40),
        window in 1usize..=6,
    ) {
        let trace = symbols(&trace);
        let training = symbols(&training);
        let mut plain = ModTen { name: "prop-transparent", window, trained_events: 0 };
        let mut wrapped = InstrumentedDetector::new(plain.clone());
        plain.train(&training);
        wrapped.train(&training);
        prop_assert_eq!(wrapped.name(), plain.name());
        prop_assert_eq!(wrapped.window(), plain.window());
        prop_assert_eq!(wrapped.min_window(), plain.min_window());
        prop_assert_eq!(
            wrapped.maximal_response_floor(),
            plain.maximal_response_floor()
        );
        prop_assert_eq!(wrapped.scores(&trace), plain.scores(&trace));
        prop_assert_eq!(wrapped.inner().trained_events, plain.trained_events);
    }

    /// Concurrent callers sharing one wrapped detector all observe the
    /// serial scores (scoring is `&self`), and the recorded call/window
    /// counters account for every caller exactly once.
    #[test]
    fn instrumented_wrapper_is_consistent_under_concurrent_callers(
        trace in prop::collection::vec(0u32..50, 6..80),
        window in 1usize..=4,
        callers in 2usize..=6,
    ) {
        let trace = symbols(&trace);
        let wrapped = InstrumentedDetector::new(ModTen {
            name: "prop-concurrent",
            window,
            trained_events: 0,
        });
        let expected = wrapped.inner().scores(&trace);
        let before = detdiv_obs::snapshot();
        let all: Vec<Vec<f64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..callers)
                .map(|_| scope.spawn(|| wrapped.scores(&trace)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (i, got) in all.iter().enumerate() {
            prop_assert_eq!(got, &expected, "caller {}", i);
        }
        let after = detdiv_obs::snapshot();
        let delta = |name: &str| after.counter(name) - before.counter(name);
        prop_assert_eq!(
            delta("detector/prop-concurrent/score_calls"),
            callers as u64
        );
        prop_assert_eq!(
            delta("detector/prop-concurrent/windows_scored"),
            (callers * expected.len()) as u64
        );
    }
}

//! Detector-contract conformance suite.
//!
//! The single-flight trained-model cache (`detdiv-cache`) shares one
//! trained [`TrainedModel`] across every evaluation case and every
//! worker thread that asks for the same (training stream, family,
//! window) key. That sharing is only sound if every detector family
//! honours three contracts:
//!
//! 1. **`&self`-purity** — scoring is a pure function of the trained
//!    state and the test stream: the same stream scores identically on
//!    repeated calls, including concurrent calls from multiple threads;
//! 2. **train-once/score-many ≡ train-per-case** — one model trained on
//!    a stream scores every case exactly as a freshly trained detector
//!    would (this is the cache's core substitution);
//! 3. **retrain idempotence** — retraining on the same stream replaces
//!    the model with an equivalent one (training is not accumulative in
//!    a way that changes scores).
//!
//! All seven families of the experiment suite are checked: stide,
//! t-stide, markov, hmm, neural network, Lane & Brodley, and the
//! RIPPER-style rule learner. Stochastic substrates (HMM, neural net)
//! are seeded, so "equivalent" here is bit-identical.
//!
//! A fourth contract covers the streaming side (`detdiv-stream`, a
//! dev-only dependency): every family's [`detdiv_stream::ModelAdapter`]
//! must stay silent for exactly `DW − 1` warmup events, emit verdicts
//! with score and confidence in `[0, 1]` afterwards, replay a stream
//! bit-identically after `reset`, and be `Send` so the engine can move
//! detector banks across worker threads.

use detdiv_core::{LabeledCase, SequenceAnomalyDetector, TrainedModel};
use detdiv_detectors::{
    HmmConfig, HmmDetector, LaneBrodley, MarkovDetector, NeuralConfig, NeuralDetector,
    RipperDetector, Stide, TStide,
};
use detdiv_sequence::Symbol;
use detdiv_synth::{Corpus, SynthesisConfig};
use proptest::prelude::*;

/// One freshly constructed, untrained detector per family, with
/// hyperparameters turned down far enough that the expensive substrates
/// (HMM's Baum–Welch, the neural net's backprop epochs) stay fast on
/// test-sized corpora without changing the contracts under test.
fn families(window: usize) -> Vec<Box<dyn SequenceAnomalyDetector>> {
    vec![
        Box::new(Stide::new(window)),
        Box::new(TStide::new(window)),
        Box::new(MarkovDetector::new(window)),
        Box::new(HmmDetector::with_config(
            window,
            HmmConfig {
                states: Some(4),
                max_iters: 4,
                max_training_events: 1_000,
                ..HmmConfig::default()
            },
        )),
        Box::new(NeuralDetector::with_config(
            window,
            NeuralConfig {
                hidden: 4,
                epochs: 4,
                min_count: 2,
                ..NeuralConfig::default()
            },
        )),
        Box::new(LaneBrodley::new(window)),
        Box::new(RipperDetector::new(window)),
    ]
}

/// A small but structurally faithful instance of the paper's synthetic
/// evaluation data.
fn corpus(seed: u64) -> Corpus {
    let config = SynthesisConfig::builder()
        .training_len(4_000)
        .anomaly_sizes(2..=3)
        .windows(2..=4)
        .background_len(128)
        .plant_repeats(3)
        .seed(seed)
        .build()
        .expect("valid conformance config");
    Corpus::synthesize(&config).expect("synthesis succeeds")
}

fn assert_scores_eq(family: &str, context: &str, a: &[f64], b: &[f64]) {
    assert_eq!(
        a.len(),
        b.len(),
        "{family}: {context}: score lengths diverge"
    );
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{family}: {context}: scores diverge at window {i}: {x} vs {y}"
        );
    }
}

/// Contract (1): scoring is `&self`-pure. The same test stream scores
/// bit-identically on repeated serial calls and when four threads score
/// through a shared reference concurrently — exactly the access pattern
/// the cache creates when workers share one `Arc<dyn TrainedModel>`.
#[test]
fn scoring_is_self_pure_serially_and_across_threads() {
    let corpus = corpus(11);
    let case = corpus.case(3, 3).expect("synthesized case");
    let test: &[Symbol] = case.test_stream();
    for mut det in families(3) {
        det.train(corpus.training());
        let name = det.name().to_owned();
        let first = det.scores(test);
        let second = det.scores(test);
        assert_scores_eq(&name, "serial rescoring", &first, &second);

        let shared: &dyn SequenceAnomalyDetector = det.as_ref();
        let concurrent: Vec<Vec<f64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| shared.scores(test)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (caller, got) in concurrent.iter().enumerate() {
            assert_scores_eq(&name, &format!("concurrent caller {caller}"), &first, got);
        }
    }
}

/// Contract (2): one model trained on the corpus stream scores every
/// case exactly as a detector freshly trained per case does. This is
/// the substitution the single-flight cache performs on every hit.
#[test]
fn train_once_score_many_matches_train_per_case() {
    let corpus = corpus(23);
    for (family_index, mut shared) in families(3).into_iter().enumerate() {
        shared.train(corpus.training());
        let name = shared.name().to_owned();
        for anomaly_size in 2..=3 {
            let case = corpus.case(anomaly_size, 3).expect("synthesized case");
            let cached_scores = shared.scores(case.test_stream());

            let mut fresh = families(3).remove(family_index);
            fresh.train(case.training());
            let fresh_scores = fresh.scores(case.test_stream());
            assert_scores_eq(
                &name,
                &format!("AS={anomaly_size} train-per-case"),
                &fresh_scores,
                &cached_scores,
            );
        }
    }
}

/// Contract (4): the streaming adapter honours the `StreamDetector`
/// contract for every family — exactly `DW − 1` leading `None`s, every
/// verdict's score and confidence in `[0, 1]`, and a bit-identical
/// replay after `reset`.
#[test]
fn stream_adapters_conform() {
    use detdiv_stream::{ModelAdapter, SignalContext, StreamDetector};
    use std::sync::Arc;

    let corpus = corpus(31);
    for window in 2..=4 {
        let case = corpus.case(2, window).expect("synthesized case");
        let test: &[Symbol] = case.test_stream();
        for mut det in families(window) {
            det.train(corpus.training());
            let name = det.name().to_owned();
            let model: Arc<dyn TrainedModel> = Arc::new(det);
            let mut adapter = ModelAdapter::new(Arc::clone(&model));
            assert_eq!(adapter.warmup_len(), window - 1, "{name}");

            let feed = |adapter: &mut ModelAdapter| -> Vec<f64> {
                let mut scores = Vec::new();
                for (i, &s) in test.iter().enumerate() {
                    match adapter.update(&SignalContext::from_symbol(i as u64, 0, s)) {
                        None => assert!(
                            i < window - 1,
                            "{name}: silent past the warmup boundary at event {i}"
                        ),
                        Some(r) => {
                            assert!(
                                i >= window - 1,
                                "{name}: verdict inside warmup at event {i}"
                            );
                            assert!(
                                (0.0..=1.0).contains(&r.score),
                                "{name}: score {} out of range",
                                r.score
                            );
                            assert!(
                                (0.0..=1.0).contains(&r.confidence),
                                "{name}: confidence {} out of range",
                                r.confidence
                            );
                            assert!(!r.reason.is_empty(), "{name}: empty reason");
                            scores.push(r.score);
                        }
                    }
                }
                scores
            };

            let first = feed(&mut adapter);
            assert_scores_eq(&name, "streamed vs batch", &model.scores(test), &first);
            adapter.reset();
            let replay = feed(&mut adapter);
            assert_scores_eq(&name, "replay after reset", &first, &replay);
        }
    }
}

/// Contract (4), `Send` half: adapters (and boxed stream detectors in
/// general) can move across worker threads. Compile-time assertion.
#[test]
fn stream_adapters_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<detdiv_stream::ModelAdapter>();
    assert_send::<Box<dyn detdiv_stream::StreamDetector>>();
}

proptest! {
    // Training the two iterative substrates dominates runtime; a handful
    // of randomized corpora already exercises the contract across
    // alphabets, injection positions and window/anomaly geometries.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Contract (3): retraining on the same stream yields an equivalent
    /// (bit-identical-scoring) model for every family, over randomized
    /// synthesized corpora and windows.
    #[test]
    fn retraining_on_the_same_stream_is_equivalent(
        seed in 0u64..1_000,
        window in 2usize..=4,
    ) {
        let corpus = corpus(seed);
        let case = corpus.case(2, window).expect("synthesized case");
        let test: &[Symbol] = case.test_stream();
        for mut det in families(window) {
            det.train(corpus.training());
            let name = det.name().to_owned();
            let before = det.scores(test);
            det.train(corpus.training());
            let after = det.scores(test);
            prop_assert_eq!(
                before.len(),
                after.len(),
                "{}: retrain changed score length", name
            );
            for (i, (x, y)) in before.iter().zip(&after).enumerate() {
                prop_assert!(
                    x.to_bits() == y.to_bits(),
                    "{}: retrain diverges at window {}: {} vs {}",
                    name, i, x, y
                );
            }
        }
    }
}

//! Detector combination: exploiting algorithmic diversity.
//!
//! §7 of the paper sketches two combination idioms:
//!
//! * **Union** — deploy detectors side by side and alarm when *any*
//!   member alarms, widening coverage (useful when coverages differ, as
//!   with Stide and Markov at small windows; useless when they coincide,
//!   as with Stide and L&B);
//! * **Suppression** — use a low-false-alarm detector to confirm a
//!   high-coverage one: "any alarms raised by the Markov-based detector,
//!   and not raised by Stide, may be ignored as false alarms; alarms
//!   raised by both Stide and the Markov-based detector are possible
//!   hits". Suppression is alarm-level intersection.

use std::fmt;

use detdiv_sequence::Symbol;

use crate::detector::{alarms_at, SequenceAnomalyDetector, TrainedModel};
use crate::error::EvalError;

/// How an ensemble combines its members' alarms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CombinationRule {
    /// Alarm when any member alarms (union of coverages).
    Any,
    /// Alarm only when every member alarms (intersection /
    /// alarm-confirmation).
    All,
}

/// Pointwise OR of two alarm vectors.
///
/// # Errors
///
/// Returns [`EvalError::ScoreLengthMismatch`] if the vectors differ in
/// length.
pub fn alarm_union(a: &[bool], b: &[bool]) -> Result<Vec<bool>, EvalError> {
    if a.len() != b.len() {
        return Err(EvalError::ScoreLengthMismatch {
            expected: a.len(),
            found: b.len(),
        });
    }
    Ok(a.iter().zip(b).map(|(&x, &y)| x || y).collect())
}

/// Pointwise AND of two alarm vectors — the paper's suppression scheme:
/// `primary` alarms not confirmed by `suppressor` are discarded as false
/// alarms.
///
/// # Errors
///
/// Returns [`EvalError::ScoreLengthMismatch`] if the vectors differ in
/// length.
///
/// # Examples
///
/// ```
/// use detdiv_core::suppress_alarms;
///
/// let markov = [true, true, false, true];
/// let stide = [true, false, false, true];
/// assert_eq!(
///     suppress_alarms(&markov, &stide).unwrap(),
///     vec![true, false, false, true]
/// );
/// ```
pub fn suppress_alarms(primary: &[bool], suppressor: &[bool]) -> Result<Vec<bool>, EvalError> {
    if primary.len() != suppressor.len() {
        return Err(EvalError::ScoreLengthMismatch {
            expected: primary.len(),
            found: suppressor.len(),
        });
    }
    Ok(primary
        .iter()
        .zip(suppressor)
        .map(|(&p, &s)| p && s)
        .collect())
}

/// An alarm-level ensemble of same-window detectors, itself a
/// [`SequenceAnomalyDetector`].
///
/// Each member's responses are binarised at that member's own
/// maximal-response floor, then combined with the configured
/// [`CombinationRule`]; the ensemble's responses are crisp `{0, 1}`.
///
/// # Examples
///
/// See `detdiv_eval`'s suppression experiment, which wraps the Markov
/// detector (primary coverage) and Stide (false-alarm suppressor) in an
/// [`CombinationRule::All`] ensemble.
pub struct AlarmEnsemble {
    name: String,
    rule: CombinationRule,
    members: Vec<Box<dyn SequenceAnomalyDetector>>,
    window: usize,
}

impl AlarmEnsemble {
    /// Builds an ensemble from same-window members.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or the members' windows differ — an
    /// alarm-level combination is only meaningful position-by-position,
    /// which requires a common window.
    pub fn new(
        name: &str,
        rule: CombinationRule,
        members: Vec<Box<dyn SequenceAnomalyDetector>>,
    ) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        let window = members[0].window();
        assert!(
            members.iter().all(|m| m.window() == window),
            "ensemble members must share a detector window"
        );
        AlarmEnsemble {
            name: name.to_owned(),
            rule,
            members,
            window,
        }
    }

    /// The combination rule.
    pub fn rule(&self) -> CombinationRule {
        self.rule
    }

    /// The member detectors.
    pub fn members(&self) -> &[Box<dyn SequenceAnomalyDetector>] {
        &self.members
    }
}

impl fmt::Debug for AlarmEnsemble {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AlarmEnsemble")
            .field("name", &self.name)
            .field("rule", &self.rule)
            .field(
                "members",
                &self
                    .members
                    .iter()
                    .map(|m| m.name().to_owned())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl TrainedModel for AlarmEnsemble {
    fn name(&self) -> &str {
        &self.name
    }

    fn window(&self) -> usize {
        self.window
    }

    fn approx_bytes(&self) -> usize {
        self.members.iter().map(|m| m.approx_bytes()).sum()
    }

    fn scores(&self, test: &[Symbol]) -> Vec<f64> {
        let mut combined: Option<Vec<bool>> = None;
        for m in &self.members {
            let member_alarms = alarms_at(&m.scores(test), m.maximal_response_floor());
            combined = Some(match combined {
                None => member_alarms,
                Some(acc) => match self.rule {
                    CombinationRule::Any => acc
                        .iter()
                        .zip(&member_alarms)
                        .map(|(&a, &b)| a || b)
                        .collect(),
                    CombinationRule::All => acc
                        .iter()
                        .zip(&member_alarms)
                        .map(|(&a, &b)| a && b)
                        .collect(),
                },
            });
        }
        combined
            .expect("ensemble has members")
            .into_iter()
            .map(|a| if a { 1.0 } else { 0.0 })
            .collect()
    }
}

impl SequenceAnomalyDetector for AlarmEnsemble {
    fn train(&mut self, training: &[Symbol]) {
        for m in &mut self.members {
            m.train(training);
        }
    }

    fn min_window(&self) -> usize {
        self.members
            .iter()
            .map(|m| m.min_window())
            .max()
            .expect("ensemble has members")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_sequence::symbols;

    /// Flags windows whose first element equals `trigger`.
    struct FirstIs {
        trigger: u32,
        floor: f64,
        response: f64,
    }

    impl TrainedModel for FirstIs {
        fn name(&self) -> &str {
            "first-is"
        }
        fn window(&self) -> usize {
            2
        }
        fn scores(&self, test: &[Symbol]) -> Vec<f64> {
            if test.len() < 2 {
                return Vec::new();
            }
            test.windows(2)
                .map(|w| {
                    if w[0].id() == self.trigger {
                        self.response
                    } else {
                        0.0
                    }
                })
                .collect()
        }
        fn maximal_response_floor(&self) -> f64 {
            self.floor
        }
    }

    impl SequenceAnomalyDetector for FirstIs {
        fn train(&mut self, _t: &[Symbol]) {}
    }

    fn det(trigger: u32) -> Box<dyn SequenceAnomalyDetector> {
        Box::new(FirstIs {
            trigger,
            floor: 1.0,
            response: 1.0,
        })
    }

    #[test]
    fn alarm_union_and_suppression() {
        let a = [true, false, true];
        let b = [false, false, true];
        assert_eq!(alarm_union(&a, &b).unwrap(), vec![true, false, true]);
        assert_eq!(suppress_alarms(&a, &b).unwrap(), vec![false, false, true]);
        assert!(alarm_union(&a, &[true]).is_err());
        assert!(suppress_alarms(&a, &[true]).is_err());
    }

    #[test]
    fn any_rule_is_union() {
        let e = AlarmEnsemble::new("u", CombinationRule::Any, vec![det(1), det(2)]);
        let s = symbols(&[1, 2, 3, 1]);
        // windows: (1,2) (2,3) (3,1) -> member1 fires on 1st, member2 on 2nd.
        assert_eq!(e.scores(&s), vec![1.0, 1.0, 0.0]);
    }

    #[test]
    fn all_rule_is_intersection() {
        let e = AlarmEnsemble::new("i", CombinationRule::All, vec![det(1), det(1)]);
        let s = symbols(&[1, 2, 1, 3]);
        assert_eq!(e.scores(&s), vec![1.0, 0.0, 1.0]);
        let e2 = AlarmEnsemble::new("i2", CombinationRule::All, vec![det(1), det(2)]);
        assert_eq!(e2.scores(&s), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn member_floors_are_respected() {
        // A member with sub-1.0 responses but a matching floor still
        // contributes alarms.
        let weak = Box::new(FirstIs {
            trigger: 1,
            floor: 0.9,
            response: 0.95,
        });
        let e = AlarmEnsemble::new("w", CombinationRule::Any, vec![weak]);
        let s = symbols(&[1, 2]);
        assert_eq!(e.scores(&s), vec![1.0]);
        // The ensemble's own responses are crisp, so the default floor
        // of 1.0 classifies them correctly.
        assert_eq!(e.maximal_response_floor(), 1.0);
    }

    #[test]
    fn train_reaches_all_members() {
        struct CountTrain {
            trained: bool,
        }
        impl TrainedModel for CountTrain {
            fn name(&self) -> &str {
                "count"
            }
            fn window(&self) -> usize {
                2
            }
            fn scores(&self, test: &[Symbol]) -> Vec<f64> {
                vec![0.0; test.len().saturating_sub(1)]
            }
        }
        impl SequenceAnomalyDetector for CountTrain {
            fn train(&mut self, _t: &[Symbol]) {
                self.trained = true;
            }
        }
        let mut e = AlarmEnsemble::new(
            "t",
            CombinationRule::Any,
            vec![
                Box::new(CountTrain { trained: false }),
                Box::new(CountTrain { trained: false }),
            ],
        );
        e.train(&symbols(&[1, 2, 3]));
        // Indirect check: scores work after training and have the right
        // shape.
        assert_eq!(e.scores(&symbols(&[1, 2, 3])).len(), 2);
    }

    #[test]
    #[should_panic(expected = "share a detector window")]
    fn mismatched_windows_panic() {
        struct W3;
        impl TrainedModel for W3 {
            fn name(&self) -> &str {
                "w3"
            }
            fn window(&self) -> usize {
                3
            }
            fn scores(&self, _test: &[Symbol]) -> Vec<f64> {
                Vec::new()
            }
        }
        impl SequenceAnomalyDetector for W3 {
            fn train(&mut self, _t: &[Symbol]) {}
        }
        let _ = AlarmEnsemble::new("bad", CombinationRule::Any, vec![det(1), Box::new(W3)]);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_panics() {
        let _ = AlarmEnsemble::new("empty", CombinationRule::Any, Vec::new());
    }

    #[test]
    fn debug_lists_members() {
        let e = AlarmEnsemble::new("u", CombinationRule::Any, vec![det(1)]);
        let d = format!("{e:?}");
        assert!(d.contains("first-is"));
    }
}

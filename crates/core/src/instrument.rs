//! Telemetry instrumentation for detectors.
//!
//! [`InstrumentedDetector`] wraps any [`SequenceAnomalyDetector`] and
//! records, through [`detdiv_obs`]:
//!
//! * `detector/<name>/train_ns` — histogram of wall time per
//!   [`SequenceAnomalyDetector::train`] call;
//! * `detector/<name>/score_ns` — histogram of wall time per
//!   [`TrainedModel::scores`] call;
//! * `detector/<name>/train_calls`, `detector/<name>/score_calls` —
//!   call counters;
//! * `detector/<name>/windows_scored` — total window positions scored;
//! * `detector/<name>/alarms_raised` — responses at or above the
//!   detector's [`TrainedModel::maximal_response_floor`].
//!
//! The wrapper is transparent: name, window, floor, minimum window and
//! the scores themselves pass through unchanged, so wrapping cannot
//! perturb evaluation results. When telemetry is disabled
//! (`DETDIV_LOG=off`) each recording call reduces to one relaxed
//! atomic load.

use crate::detector::{SequenceAnomalyDetector, TrainedModel};
use detdiv_sequence::Symbol;
use std::time::Instant;

/// A transparent telemetry-recording wrapper around any detector; see
/// the module docs for the recorded series.
#[derive(Debug, Clone)]
pub struct InstrumentedDetector<D> {
    inner: D,
}

impl<D: SequenceAnomalyDetector> InstrumentedDetector<D> {
    /// Wraps `inner`; metric names are derived from
    /// `inner.name()` at call time.
    pub fn new(inner: D) -> Self {
        InstrumentedDetector { inner }
    }

    /// A reference to the wrapped detector.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Unwraps, returning the inner detector.
    pub fn into_inner(self) -> D {
        self.inner
    }
}

impl<D: TrainedModel> TrainedModel for InstrumentedDetector<D> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn window(&self) -> usize {
        self.inner.window()
    }

    fn scores(&self, test: &[Symbol]) -> Vec<f64> {
        if !detdiv_obs::telemetry_enabled() {
            return self.inner.scores(test);
        }
        let started = Instant::now();
        let scores = self.inner.scores(test);
        let elapsed = started.elapsed();
        let name = self.inner.name();
        let floor = self.inner.maximal_response_floor();
        let alarms = scores.iter().filter(|&&s| s >= floor).count() as u64;
        detdiv_obs::record_duration(&format!("detector/{name}/score_ns"), elapsed);
        detdiv_obs::incr_counter(&format!("detector/{name}/score_calls"), 1);
        detdiv_obs::incr_counter(
            &format!("detector/{name}/windows_scored"),
            scores.len() as u64,
        );
        if alarms > 0 {
            detdiv_obs::incr_counter(&format!("detector/{name}/alarms_raised"), alarms);
        }
        scores
    }

    fn score_one(&self, window: &[Symbol]) -> f64 {
        // The per-event streaming path: no spans, no counters — a
        // telemetry call per event would dominate the work being
        // measured. Streaming throughput is accounted by the engine.
        self.inner.score_one(window)
    }

    fn maximal_response_floor(&self) -> f64 {
        self.inner.maximal_response_floor()
    }

    fn approx_bytes(&self) -> usize {
        self.inner.approx_bytes()
    }
}

impl<D: SequenceAnomalyDetector> SequenceAnomalyDetector for InstrumentedDetector<D> {
    fn train(&mut self, training: &[Symbol]) {
        if !detdiv_obs::telemetry_enabled() {
            return self.inner.train(training);
        }
        let started = Instant::now();
        self.inner.train(training);
        let name = self.inner.name();
        detdiv_obs::record_duration(&format!("detector/{name}/train_ns"), started.elapsed());
        detdiv_obs::incr_counter(&format!("detector/{name}/train_calls"), 1);
    }

    fn min_window(&self) -> usize {
        self.inner.min_window()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_sequence::symbols;

    /// A toy detector: response 1.0 whenever the window starts with
    /// symbol 7, else 0.25.
    struct StartsWithSeven {
        window: usize,
        trained: bool,
    }

    impl TrainedModel for StartsWithSeven {
        fn name(&self) -> &str {
            "starts-with-seven"
        }
        fn window(&self) -> usize {
            self.window
        }
        fn scores(&self, test: &[Symbol]) -> Vec<f64> {
            if test.len() < self.window {
                return Vec::new();
            }
            test.windows(self.window)
                .map(|w| if w[0].id() == 7 { 1.0 } else { 0.25 })
                .collect()
        }
    }

    impl SequenceAnomalyDetector for StartsWithSeven {
        fn train(&mut self, _training: &[Symbol]) {
            self.trained = true;
        }
    }

    #[test]
    fn wrapper_is_transparent() {
        let mut plain = StartsWithSeven {
            window: 2,
            trained: false,
        };
        let mut wrapped = InstrumentedDetector::new(StartsWithSeven {
            window: 2,
            trained: false,
        });
        let train = symbols(&[1, 2, 3]);
        let test = symbols(&[7, 1, 7, 2]);
        plain.train(&train);
        wrapped.train(&train);
        assert_eq!(wrapped.name(), plain.name());
        assert_eq!(wrapped.window(), plain.window());
        assert_eq!(wrapped.min_window(), plain.min_window());
        assert_eq!(
            wrapped.maximal_response_floor(),
            plain.maximal_response_floor()
        );
        assert_eq!(wrapped.scores(&test), plain.scores(&test));
        assert!(wrapped.inner().trained);
        assert!(wrapped.into_inner().trained);
    }

    #[test]
    fn wrapper_records_training_scoring_and_alarm_telemetry() {
        let before = detdiv_obs::snapshot();
        let mut d = InstrumentedDetector::new(StartsWithSeven {
            window: 2,
            trained: false,
        });
        d.train(&symbols(&[1, 2, 3, 4]));
        let scores = d.scores(&symbols(&[7, 1, 7, 2, 3]));
        assert_eq!(scores.len(), 4);
        let after = detdiv_obs::snapshot();
        let delta = |name: &str| after.counter(name) - before.counter(name);
        assert_eq!(delta("detector/starts-with-seven/train_calls"), 1);
        assert_eq!(delta("detector/starts-with-seven/score_calls"), 1);
        assert_eq!(delta("detector/starts-with-seven/windows_scored"), 4);
        assert_eq!(delta("detector/starts-with-seven/alarms_raised"), 2);
        let train_hist = after
            .histogram("detector/starts-with-seven/train_ns")
            .expect("train histogram recorded");
        assert!(train_hist.count >= 1);
        assert!(after
            .histogram("detector/starts-with-seven/score_ns")
            .is_some());
    }

    #[test]
    fn boxed_dynamic_detectors_can_be_wrapped() {
        let boxed: Box<dyn SequenceAnomalyDetector> = Box::new(StartsWithSeven {
            window: 2,
            trained: false,
        });
        let mut wrapped = InstrumentedDetector::new(boxed);
        wrapped.train(&symbols(&[1, 2, 3]));
        assert_eq!(wrapped.scores(&symbols(&[7, 1, 2])).len(), 2);
        assert_eq!(wrapped.name(), "starts-with-seven");
    }
}

//! Detection-coverage maps over the (anomaly size × detector window) grid.
//!
//! The paper's central artifacts — Figures 3 through 6 — chart, for each
//! detector, which (AS, DW) combinations yield a detection (a star),
//! which leave the detector blind, and which are undefined (AS = 1, and
//! windows below the detector's minimum). [`CoverageMap`] is that chart
//! as a value: it can be queried, combined (union / intersection),
//! compared (subset, gain) and rendered in the shape of the figures.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::EvalError;
use crate::outcome::Classification;

/// The status of one (anomaly size, detector window) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellStatus {
    /// The detector registered a maximal response in the incident span —
    /// a star in the paper's maps.
    Detect,
    /// A positive but sub-maximal response.
    Weak,
    /// Response 0 across the incident span.
    Blind,
    /// The cell is not measurable (anomaly size 1, or a window below the
    /// detector's minimum).
    Undefined,
    /// The cell's computation failed permanently (its supervised unit
    /// exhausted every retry) — rendered `!` so a degraded sweep is
    /// visible in the report instead of aborting it. Never produced by a
    /// fault-free run.
    Failed,
}

impl CellStatus {
    /// Whether the cell counts as detected.
    #[inline]
    pub const fn is_detection(self) -> bool {
        matches!(self, CellStatus::Detect)
    }

    /// Whether the cell is measurable at all. [`CellStatus::Failed`]
    /// counts as unmeasurable: its verdict was never obtained.
    #[inline]
    pub const fn is_defined(self) -> bool {
        !matches!(self, CellStatus::Undefined | CellStatus::Failed)
    }
}

impl From<Classification> for CellStatus {
    fn from(c: Classification) -> Self {
        match c {
            Classification::Blind => CellStatus::Blind,
            Classification::Weak => CellStatus::Weak,
            Classification::Capable => CellStatus::Detect,
        }
    }
}

/// A detector's detection coverage over a rectangular (AS, DW) grid.
///
/// # Examples
///
/// ```
/// use detdiv_core::{CellStatus, CoverageMap};
///
/// let mut map = CoverageMap::new("stide", 2..=4, 2..=5);
/// map.set(3, 4, CellStatus::Detect).unwrap();
/// assert!(map.detects(3, 4).unwrap());
/// assert_eq!(map.detection_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageMap {
    detector: String,
    anomaly_sizes: Vec<usize>,
    windows: Vec<usize>,
    /// Row-major by window, then anomaly size.
    cells: Vec<CellStatus>,
}

impl CoverageMap {
    /// Creates a map over `anomaly_sizes × windows`, all cells
    /// [`CellStatus::Undefined`].
    ///
    /// # Panics
    ///
    /// Panics if either range is empty.
    pub fn new(
        detector: &str,
        anomaly_sizes: std::ops::RangeInclusive<usize>,
        windows: std::ops::RangeInclusive<usize>,
    ) -> Self {
        let anomaly_sizes: Vec<usize> = anomaly_sizes.collect();
        let windows: Vec<usize> = windows.collect();
        assert!(
            !anomaly_sizes.is_empty() && !windows.is_empty(),
            "coverage grid must be non-empty"
        );
        let cells = vec![CellStatus::Undefined; anomaly_sizes.len() * windows.len()];
        CoverageMap {
            detector: detector.to_owned(),
            anomaly_sizes,
            windows,
            cells,
        }
    }

    /// The detector (or combination) this map describes.
    pub fn detector(&self) -> &str {
        &self.detector
    }

    /// Renames the map (used when deriving combined maps).
    pub fn set_detector(&mut self, name: &str) {
        self.detector = name.to_owned();
    }

    /// The anomaly sizes of the grid, ascending.
    pub fn anomaly_sizes(&self) -> &[usize] {
        &self.anomaly_sizes
    }

    /// The detector windows of the grid, ascending.
    pub fn windows(&self) -> &[usize] {
        &self.windows
    }

    fn index(&self, anomaly_size: usize, window: usize) -> Result<usize, EvalError> {
        let ai = self
            .anomaly_sizes
            .iter()
            .position(|&a| a == anomaly_size)
            .ok_or(EvalError::CellOutOfGrid {
                anomaly_size,
                window,
            })?;
        let wi =
            self.windows
                .iter()
                .position(|&w| w == window)
                .ok_or(EvalError::CellOutOfGrid {
                    anomaly_size,
                    window,
                })?;
        Ok(wi * self.anomaly_sizes.len() + ai)
    }

    /// Sets the status of cell (AS, DW).
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::CellOutOfGrid`] for coordinates outside the
    /// grid.
    pub fn set(
        &mut self,
        anomaly_size: usize,
        window: usize,
        status: CellStatus,
    ) -> Result<(), EvalError> {
        let i = self.index(anomaly_size, window)?;
        self.cells[i] = status;
        Ok(())
    }

    /// The status of cell (AS, DW).
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::CellOutOfGrid`] for coordinates outside the
    /// grid.
    pub fn get(&self, anomaly_size: usize, window: usize) -> Result<CellStatus, EvalError> {
        Ok(self.cells[self.index(anomaly_size, window)?])
    }

    /// Whether the detector detects at (AS, DW).
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::CellOutOfGrid`] for coordinates outside the
    /// grid.
    pub fn detects(&self, anomaly_size: usize, window: usize) -> Result<bool, EvalError> {
        Ok(self.get(anomaly_size, window)?.is_detection())
    }

    /// Number of cells with status [`CellStatus::Detect`].
    pub fn detection_count(&self) -> usize {
        self.cells.iter().filter(|c| c.is_detection()).count()
    }

    /// Number of defined (measurable) cells.
    pub fn defined_count(&self) -> usize {
        self.cells.iter().filter(|c| c.is_defined()).count()
    }

    /// Iterates `(anomaly_size, window, status)` over every cell.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, CellStatus)> + '_ {
        self.windows.iter().enumerate().flat_map(move |(wi, &w)| {
            self.anomaly_sizes
                .iter()
                .enumerate()
                .map(move |(ai, &a)| (a, w, self.cells[wi * self.anomaly_sizes.len() + ai]))
        })
    }

    fn same_grid(&self, other: &CoverageMap) -> bool {
        self.anomaly_sizes == other.anomaly_sizes && self.windows == other.windows
    }

    /// Whether every cell this map detects is also detected by `other`
    /// — the paper's "Stide's detection coverage is a subset of the
    /// Markov-based detector's coverage" relation (§7).
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::GridMismatch`] if the grids differ.
    pub fn is_subset_of(&self, other: &CoverageMap) -> Result<bool, EvalError> {
        if !self.same_grid(other) {
            return Err(EvalError::GridMismatch);
        }
        Ok(self
            .cells
            .iter()
            .zip(&other.cells)
            .all(|(a, b)| !a.is_detection() || b.is_detection()))
    }

    /// The union coverage of two detectors deployed side by side: a cell
    /// is detected if either detects it; defined cells otherwise keep the
    /// stronger of the two verdicts (Weak over Blind); a cell undefined
    /// in both stays undefined.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::GridMismatch`] if the grids differ.
    pub fn union(&self, other: &CoverageMap) -> Result<CoverageMap, EvalError> {
        if !self.same_grid(other) {
            return Err(EvalError::GridMismatch);
        }
        let mut out = self.clone();
        out.detector = format!("{} ∪ {}", self.detector, other.detector);
        for (c, &o) in out.cells.iter_mut().zip(&other.cells) {
            *c = union_status(*c, o);
        }
        Ok(out)
    }

    /// The intersection coverage: a cell is detected only if both detect
    /// it (the alarm-confirmation scheme of §7).
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::GridMismatch`] if the grids differ.
    pub fn intersection(&self, other: &CoverageMap) -> Result<CoverageMap, EvalError> {
        if !self.same_grid(other) {
            return Err(EvalError::GridMismatch);
        }
        let mut out = self.clone();
        out.detector = format!("{} ∩ {}", self.detector, other.detector);
        for (c, &o) in out.cells.iter_mut().zip(&other.cells) {
            *c = intersection_status(*c, o);
        }
        Ok(out)
    }

    /// How many additional cells `other` detects beyond this map — the
    /// *diversity gain* of adding `other` to this detector. Zero means
    /// the combination affords no improvement in hits (the paper's
    /// Stide + L&B finding).
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::GridMismatch`] if the grids differ.
    pub fn gain_from(&self, other: &CoverageMap) -> Result<usize, EvalError> {
        if !self.same_grid(other) {
            return Err(EvalError::GridMismatch);
        }
        Ok(self
            .cells
            .iter()
            .zip(&other.cells)
            .filter(|(a, b)| !a.is_detection() && b.is_detection())
            .count())
    }

    /// Jaccard similarity of the two detection regions (1.0 when both
    /// detect exactly the same cells; 0.0 when disjoint; 1.0 for two
    /// empty regions by convention).
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::GridMismatch`] if the grids differ.
    pub fn jaccard(&self, other: &CoverageMap) -> Result<f64, EvalError> {
        if !self.same_grid(other) {
            return Err(EvalError::GridMismatch);
        }
        let mut inter = 0usize;
        let mut union = 0usize;
        for (a, b) in self.cells.iter().zip(&other.cells) {
            match (a.is_detection(), b.is_detection()) {
                (true, true) => {
                    inter += 1;
                    union += 1;
                }
                (true, false) | (false, true) => union += 1,
                (false, false) => {}
            }
        }
        Ok(if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        })
    }

    /// Renders the map in the orientation of the paper's Figures 3–6:
    /// detector window on the y-axis (largest at the top), anomaly size
    /// on the x-axis; `*` = detection, `.` = blind, `o` = weak, blank =
    /// undefined.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Performance map of {} (y: detector window, x: anomaly size)\n",
            self.detector
        ));
        for (wi, &w) in self.windows.iter().enumerate().rev() {
            out.push_str(&format!("{w:>4} |"));
            for ai in 0..self.anomaly_sizes.len() {
                let cell = self.cells[wi * self.anomaly_sizes.len() + ai];
                let ch = match cell {
                    CellStatus::Detect => " *",
                    CellStatus::Weak => " o",
                    CellStatus::Blind => " .",
                    CellStatus::Undefined => "  ",
                    CellStatus::Failed => " !",
                };
                out.push_str(ch);
            }
            out.push('\n');
        }
        out.push_str("     +");
        out.push_str(&"--".repeat(self.anomaly_sizes.len()));
        out.push('\n');
        out.push_str("      ");
        for &a in &self.anomaly_sizes {
            out.push_str(&format!("{a:>2}"));
        }
        out.push('\n');
        out
    }
}

fn union_status(a: CellStatus, b: CellStatus) -> CellStatus {
    use CellStatus::*;
    match (a, b) {
        // A detection from either side stands on its own.
        (Detect, _) | (_, Detect) => Detect,
        // Otherwise a failed operand taints the combination: the true
        // union could be anything, so the degradation stays visible.
        (Failed, _) | (_, Failed) => Failed,
        (Weak, _) | (_, Weak) => Weak,
        (Blind, _) | (_, Blind) => Blind,
        (Undefined, Undefined) => Undefined,
    }
}

fn intersection_status(a: CellStatus, b: CellStatus) -> CellStatus {
    use CellStatus::*;
    match (a, b) {
        (Undefined, _) | (_, Undefined) => Undefined,
        // Alarm confirmation cannot confirm through a failed operand.
        (Failed, _) | (_, Failed) => Failed,
        (Detect, Detect) => Detect,
        (Blind, _) | (_, Blind) => Blind,
        _ => Weak,
    }
}

impl fmt::Display for CoverageMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(name: &str, detect: &[(usize, usize)]) -> CoverageMap {
        let mut m = CoverageMap::new(name, 2..=4, 2..=4);
        for a in 2..=4 {
            for w in 2..=4 {
                m.set(a, w, CellStatus::Blind).unwrap();
            }
        }
        for &(a, w) in detect {
            m.set(a, w, CellStatus::Detect).unwrap();
        }
        m
    }

    #[test]
    fn set_get_roundtrip_and_bounds() {
        let mut m = CoverageMap::new("d", 2..=3, 2..=3);
        assert_eq!(m.get(2, 2).unwrap(), CellStatus::Undefined);
        m.set(2, 3, CellStatus::Weak).unwrap();
        assert_eq!(m.get(2, 3).unwrap(), CellStatus::Weak);
        assert!(matches!(
            m.get(9, 2),
            Err(EvalError::CellOutOfGrid {
                anomaly_size: 9,
                ..
            })
        ));
        assert!(m.set(2, 9, CellStatus::Blind).is_err());
    }

    #[test]
    fn counts_and_iter() {
        let m = filled("d", &[(2, 2), (3, 3)]);
        assert_eq!(m.detection_count(), 2);
        assert_eq!(m.defined_count(), 9);
        assert_eq!(m.iter().count(), 9);
        assert_eq!(m.iter().filter(|(_, _, c)| c.is_detection()).count(), 2);
    }

    #[test]
    fn subset_relation() {
        let small = filled("stide", &[(2, 3), (2, 4)]);
        let big = filled("markov", &[(2, 3), (2, 4), (3, 4)]);
        assert!(small.is_subset_of(&big).unwrap());
        assert!(!big.is_subset_of(&small).unwrap());
        assert!(small.is_subset_of(&small).unwrap());
    }

    #[test]
    fn union_and_intersection() {
        let a = filled("a", &[(2, 2), (3, 3)]);
        let b = filled("b", &[(3, 3), (4, 4)]);
        let u = a.union(&b).unwrap();
        assert_eq!(u.detection_count(), 3);
        assert!(u.detector().contains('∪'));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.detection_count(), 1);
        assert!(i.detects(3, 3).unwrap());
    }

    #[test]
    fn union_prefers_stronger_status() {
        let mut a = CoverageMap::new("a", 2..=2, 2..=2);
        let mut b = CoverageMap::new("b", 2..=2, 2..=2);
        a.set(2, 2, CellStatus::Weak).unwrap();
        b.set(2, 2, CellStatus::Blind).unwrap();
        assert_eq!(a.union(&b).unwrap().get(2, 2).unwrap(), CellStatus::Weak);
        // Undefined in one, defined in the other: defined wins.
        let c = CoverageMap::new("c", 2..=2, 2..=2);
        assert_eq!(a.union(&c).unwrap().get(2, 2).unwrap(), CellStatus::Weak);
    }

    #[test]
    fn gain_measures_added_detections() {
        let stide = filled("stide", &[(2, 2), (2, 3)]);
        let lb = filled("l&b", &[]); // blind everywhere
        let markov = filled("markov", &[(2, 2), (2, 3), (3, 3), (4, 4)]);
        assert_eq!(stide.gain_from(&lb).unwrap(), 0); // no improvement
        assert_eq!(stide.gain_from(&markov).unwrap(), 2);
        assert_eq!(markov.gain_from(&stide).unwrap(), 0); // subset adds nothing
    }

    #[test]
    fn jaccard_values() {
        let a = filled("a", &[(2, 2), (3, 3)]);
        let b = filled("b", &[(3, 3), (4, 4)]);
        assert!((a.jaccard(&b).unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.jaccard(&a).unwrap(), 1.0);
        let empty = filled("e", &[]);
        assert_eq!(empty.jaccard(&empty).unwrap(), 1.0);
        assert_eq!(a.jaccard(&empty).unwrap(), 0.0);
    }

    #[test]
    fn grid_mismatch_is_rejected() {
        let a = CoverageMap::new("a", 2..=3, 2..=3);
        let b = CoverageMap::new("b", 2..=4, 2..=3);
        assert!(matches!(a.union(&b), Err(EvalError::GridMismatch)));
        assert!(matches!(a.is_subset_of(&b), Err(EvalError::GridMismatch)));
        assert!(matches!(a.jaccard(&b), Err(EvalError::GridMismatch)));
        assert!(matches!(a.gain_from(&b), Err(EvalError::GridMismatch)));
    }

    #[test]
    fn render_shape() {
        let m = filled("stide", &[(2, 2)]);
        let r = m.render();
        assert!(r.contains("Performance map of stide"));
        // Largest window rendered first.
        let lines: Vec<&str> = r.lines().collect();
        assert!(lines[1].starts_with("   4"));
        assert!(lines[3].starts_with("   2"));
        assert!(lines[3].contains('*'));
        // Display delegates to render.
        assert_eq!(m.to_string(), r);
    }

    #[test]
    fn classification_conversion() {
        assert_eq!(CellStatus::from(Classification::Blind), CellStatus::Blind);
        assert_eq!(CellStatus::from(Classification::Weak), CellStatus::Weak);
        assert_eq!(
            CellStatus::from(Classification::Capable),
            CellStatus::Detect
        );
    }

    #[test]
    fn failed_cells_are_undetected_unmeasured_and_rendered() {
        let mut m = filled("degraded", &[(2, 2)]);
        m.set(3, 3, CellStatus::Failed).unwrap();
        assert!(!CellStatus::Failed.is_detection());
        assert!(!CellStatus::Failed.is_defined());
        assert_eq!(m.detection_count(), 1);
        assert_eq!(m.defined_count(), 8, "the failed cell is unmeasured");
        assert!(m.render().contains(" !"), "render: {}", m.render());
        // Union: a detection stands on its own; otherwise Failed taints.
        let other = filled("other", &[(3, 3), (4, 4)]);
        let u = m.union(&other).unwrap();
        assert_eq!(u.get(3, 3).unwrap(), CellStatus::Detect);
        let mut blind_other = filled("blind", &[]);
        blind_other.set(3, 3, CellStatus::Blind).unwrap();
        assert_eq!(
            m.union(&blind_other).unwrap().get(3, 3).unwrap(),
            CellStatus::Failed
        );
        // Intersection cannot confirm through a failed operand.
        assert_eq!(
            m.intersection(&other).unwrap().get(3, 3).unwrap(),
            CellStatus::Failed
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_grid_panics() {
        #[allow(clippy::reversed_empty_ranges)]
        let _ = CoverageMap::new("d", 3..=2, 2..=3);
    }
}

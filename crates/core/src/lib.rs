//! Evaluation framework for sequence-based anomaly detectors — the
//! primary contribution of Tan & Maxion, *"The Effects of Algorithmic
//! Diversity on Anomaly Detector Performance"* (DSN 2005).
//!
//! The framework answers, for a detector and a labelled anomalous event,
//! the paper's questions D and E (Figure 1): *is the anomalous
//! manifestation detectable by the detector, and is the detector tuned to
//! detect it?* Its pieces:
//!
//! * [`SequenceAnomalyDetector`] — the generic three-component detector
//!   shape (window-based normal model, similarity metric, threshold);
//! * [`IncidentSpan`] — the window positions influenced by an injected
//!   anomaly (Figure 2);
//! * [`evaluate_case`] / [`Classification`] — the blind / weak / capable
//!   verdict (§5.5);
//! * [`CoverageMap`] — per-detector detection-coverage maps over the
//!   (anomaly size × detector window) grid (Figures 3–6), with union /
//!   intersection / subset / gain algebra for diversity analysis (§7);
//! * [`analyze_alarms`] / [`threshold_sweep`] — hit and false-alarm
//!   accounting;
//! * [`AlarmEnsemble`], [`suppress_alarms`] — the paper's combination
//!   idioms (coverage union; Stide-confirms-Markov suppression).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::print_stdout, clippy::print_stderr)]

mod coverage;
mod detector;
mod diversity;
mod ensemble;
mod error;
mod incident;
mod instrument;
mod metrics;
mod outcome;

pub use coverage::{CellStatus, CoverageMap};
pub use detector::{alarms_at, response_count, SequenceAnomalyDetector, TrainedModel};
pub use diversity::DiversityMatrix;
pub use ensemble::{alarm_union, suppress_alarms, AlarmEnsemble, CombinationRule};
pub use error::EvalError;
pub use incident::IncidentSpan;
pub use instrument::InstrumentedDetector;
pub use metrics::{analyze_alarms, threshold_sweep, AlarmAnalysis, RocPoint};
pub use outcome::{
    classify_scores, evaluate_case, evaluate_scores, Classification, DetectionOutcome, LabeledCase,
    OwnedCase,
};

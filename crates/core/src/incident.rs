//! Incident spans: the window positions influenced by an injected anomaly.
//!
//! "When a detector window slides over an anomaly and encounters a
//! boundary sequence, the interaction between the elements of the
//! anomalous sequence and the background data will prompt the detector to
//! produce a response that is influenced by the elements of the injected
//! anomaly. ... The incident span comprises all [DW]-element sequences
//! that contain at least one element of the anomaly." (§5.4.2/§5.5,
//! Figure 2.)

use serde::{Deserialize, Serialize};

use crate::error::EvalError;

/// The inclusive range of window-start positions whose windows contain at
/// least one element of an injected anomaly.
///
/// # Examples
///
/// Figure 2 of the paper: detector window 5, foreign sequence of size 8.
/// With the anomaly injected at position 10 of a length-30 stream, the
/// span runs from window-start 6 (the last window containing only the
/// anomaly's first element) through 17 (the window starting at the
/// anomaly's last element):
///
/// ```
/// use detdiv_core::IncidentSpan;
///
/// let span = IncidentSpan::compute(30, 5, 10, 8).unwrap();
/// assert_eq!(span.first(), 6);
/// assert_eq!(span.last(), 17);
/// assert_eq!(span.len(), 12); // DW - 1 + AS = 4 + 8
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IncidentSpan {
    first: usize,
    last: usize,
}

impl IncidentSpan {
    /// Computes the incident span for an anomaly of `anomaly_len`
    /// elements whose first element sits at `position` in a test stream
    /// of `stream_len` elements, scanned with windows of length `window`.
    ///
    /// # Errors
    ///
    /// * [`EvalError::EmptyAnomaly`] if `anomaly_len` is zero;
    /// * [`EvalError::StreamShorterThanWindow`] if no window fits;
    /// * [`EvalError::AnomalyOutOfBounds`] if the anomaly does not lie
    ///   within the stream.
    pub fn compute(
        stream_len: usize,
        window: usize,
        position: usize,
        anomaly_len: usize,
    ) -> Result<Self, EvalError> {
        if anomaly_len == 0 {
            return Err(EvalError::EmptyAnomaly);
        }
        if window == 0 || stream_len < window {
            return Err(EvalError::StreamShorterThanWindow {
                stream: stream_len,
                window,
            });
        }
        if position + anomaly_len > stream_len {
            return Err(EvalError::AnomalyOutOfBounds {
                position,
                anomaly_len,
                stream: stream_len,
            });
        }
        let last_window_start = stream_len - window;
        let first = position.saturating_sub(window - 1);
        let last = (position + anomaly_len - 1).min(last_window_start);
        Ok(IncidentSpan { first, last })
    }

    /// Constructs a span directly from its inclusive bounds.
    ///
    /// # Panics
    ///
    /// Panics if `first > last`.
    pub fn from_bounds(first: usize, last: usize) -> Self {
        assert!(first <= last, "span bounds out of order: {first} > {last}");
        IncidentSpan { first, last }
    }

    /// First window-start position of the span (inclusive).
    #[inline]
    pub const fn first(&self) -> usize {
        self.first
    }

    /// Last window-start position of the span (inclusive).
    #[inline]
    pub const fn last(&self) -> usize {
        self.last
    }

    /// Number of window positions in the span.
    #[inline]
    pub const fn len(&self) -> usize {
        self.last - self.first + 1
    }

    /// Spans are never empty by construction.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        false
    }

    /// Whether window-start `pos` lies inside the span.
    #[inline]
    pub const fn contains(&self, pos: usize) -> bool {
        pos >= self.first && pos <= self.last
    }

    /// Iterates over the window-start positions of the span.
    pub fn positions(&self) -> impl Iterator<Item = usize> {
        self.first..=self.last
    }

    /// The slice of a per-window response vector covered by this span.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::ScoreLengthMismatch`] if the span extends
    /// past `scores` (the vector came from a stream of a different
    /// length).
    pub fn slice<'a>(&self, scores: &'a [f64]) -> Result<&'a [f64], EvalError> {
        if self.last >= scores.len() {
            return Err(EvalError::ScoreLengthMismatch {
                expected: self.last + 1,
                found: scores.len(),
            });
        }
        Ok(&scores[self.first..=self.last])
    }
}

impl std::fmt::Display for IncidentSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "incident-span[{}..={}]", self.first, self.last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_2_example() {
        // DW = 5, AS = 8: span length is DW - 1 + AS = 12 when not clipped.
        let span = IncidentSpan::compute(100, 5, 20, 8).unwrap();
        assert_eq!(span.first(), 16);
        assert_eq!(span.last(), 27);
        assert_eq!(span.len(), 12);
    }

    #[test]
    fn clipping_at_stream_start() {
        // Anomaly at position 1 with window 5: span clips to 0.
        let span = IncidentSpan::compute(50, 5, 1, 3).unwrap();
        assert_eq!(span.first(), 0);
        assert_eq!(span.last(), 3);
    }

    #[test]
    fn clipping_at_stream_end() {
        // Anomaly ends at the last element: last window start is n - dw.
        let span = IncidentSpan::compute(20, 4, 15, 5).unwrap();
        assert_eq!(span.last(), 16);
        assert_eq!(span.first(), 12);
    }

    #[test]
    fn window_equal_to_stream() {
        let span = IncidentSpan::compute(6, 6, 2, 2).unwrap();
        assert_eq!(span.first(), 0);
        assert_eq!(span.last(), 0);
        assert_eq!(span.len(), 1);
    }

    #[test]
    fn errors_are_detected() {
        assert!(matches!(
            IncidentSpan::compute(10, 3, 2, 0),
            Err(EvalError::EmptyAnomaly)
        ));
        assert!(matches!(
            IncidentSpan::compute(2, 3, 0, 1),
            Err(EvalError::StreamShorterThanWindow { .. })
        ));
        assert!(matches!(
            IncidentSpan::compute(10, 3, 9, 2),
            Err(EvalError::AnomalyOutOfBounds { .. })
        ));
    }

    #[test]
    fn contains_and_positions_agree() {
        let span = IncidentSpan::from_bounds(3, 6);
        let members: Vec<usize> = span.positions().collect();
        assert_eq!(members, vec![3, 4, 5, 6]);
        for p in 0..10 {
            assert_eq!(span.contains(p), members.contains(&p));
        }
    }

    #[test]
    fn slice_extracts_span_scores() {
        let span = IncidentSpan::from_bounds(1, 3);
        let scores = [0.0, 0.1, 0.2, 0.3, 0.4];
        assert_eq!(span.slice(&scores).unwrap(), &[0.1, 0.2, 0.3]);
        let short = [0.0, 0.1];
        assert!(span.slice(&short).is_err());
    }

    #[test]
    #[should_panic(expected = "span bounds out of order")]
    fn from_bounds_validates() {
        let _ = IncidentSpan::from_bounds(5, 4);
    }

    #[test]
    fn every_window_in_span_overlaps_anomaly_and_vice_versa() {
        // Exhaustive cross-check of the span definition on a small grid.
        let (stream_len, window, pos, alen) = (30usize, 4usize, 12usize, 5usize);
        let span = IncidentSpan::compute(stream_len, window, pos, alen).unwrap();
        for start in 0..=(stream_len - window) {
            let overlaps = start < pos + alen && start + window > pos;
            assert_eq!(span.contains(start), overlaps, "window start {start}");
        }
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(
            IncidentSpan::from_bounds(0, 1).to_string(),
            "incident-span[0..=1]"
        );
    }
}

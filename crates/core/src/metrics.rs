//! Hit / false-alarm accounting and threshold sweeps.
//!
//! The coverage experiments need only the blind/weak/capable verdict, but
//! the paper's combination analysis (§7) reasons about *false alarms*:
//! "if the Markov-based detector is deployed ... it can only be expected
//! to produce greater numbers of false alarms than Stide". This module
//! provides the accounting: alarms inside the incident span are hits;
//! alarms outside it are false alarms.

use serde::{Deserialize, Serialize};

use crate::error::EvalError;
use crate::incident::IncidentSpan;

/// Hit/false-alarm statistics of one alarm vector against one labelled
/// anomaly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlarmAnalysis {
    /// Whether any alarm fell inside the incident span.
    pub hit: bool,
    /// Number of alarms inside the incident span.
    pub span_alarms: usize,
    /// Number of alarms outside the incident span (false alarms).
    pub false_alarms: usize,
    /// Total number of window positions scored.
    pub positions: usize,
    /// Number of positions outside the span (the false-alarm
    /// denominator).
    pub negatives: usize,
}

impl AlarmAnalysis {
    /// False alarms as a fraction of out-of-span positions (0.0 when
    /// there are no out-of-span positions).
    pub fn false_alarm_rate(&self) -> f64 {
        if self.negatives == 0 {
            0.0
        } else {
            self.false_alarms as f64 / self.negatives as f64
        }
    }
}

/// Scores an alarm vector against the incident span of a labelled
/// anomaly.
///
/// # Errors
///
/// Returns [`EvalError::ScoreLengthMismatch`] if the span extends past
/// the alarm vector.
///
/// # Examples
///
/// ```
/// use detdiv_core::{analyze_alarms, IncidentSpan};
///
/// let span = IncidentSpan::from_bounds(2, 3);
/// let alarms = [true, false, true, false, false, true];
/// let a = analyze_alarms(&alarms, span).unwrap();
/// assert!(a.hit);
/// assert_eq!(a.false_alarms, 2); // positions 0 and 5
/// assert_eq!(a.negatives, 4);
/// assert!((a.false_alarm_rate() - 0.5).abs() < 1e-12);
/// ```
pub fn analyze_alarms(alarms: &[bool], span: IncidentSpan) -> Result<AlarmAnalysis, EvalError> {
    if span.last() >= alarms.len() {
        return Err(EvalError::ScoreLengthMismatch {
            expected: span.last() + 1,
            found: alarms.len(),
        });
    }
    let mut span_alarms = 0usize;
    let mut false_alarms = 0usize;
    for (i, &a) in alarms.iter().enumerate() {
        if a {
            if span.contains(i) {
                span_alarms += 1;
            } else {
                false_alarms += 1;
            }
        }
    }
    Ok(AlarmAnalysis {
        hit: span_alarms > 0,
        span_alarms,
        false_alarms,
        positions: alarms.len(),
        negatives: alarms.len() - span.len(),
    })
}

/// One point of a threshold sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// The detection threshold applied to the responses.
    pub threshold: f64,
    /// Whether the anomaly was hit at this threshold.
    pub hit: bool,
    /// False-alarm rate at this threshold.
    pub false_alarm_rate: f64,
}

/// Sweeps detection thresholds over a response vector, producing one
/// [`RocPoint`] per threshold.
///
/// The paper's footnote 1 observes that "the maximum anomalous response
/// will always register as an alarm regardless of where the detection
/// threshold is set"; sweeping makes that explicit: at any threshold at
/// or below the in-span maximum, the anomaly is hit.
///
/// # Errors
///
/// Returns [`EvalError::ScoreLengthMismatch`] if the span extends past
/// `scores`.
pub fn threshold_sweep(
    scores: &[f64],
    span: IncidentSpan,
    thresholds: &[f64],
) -> Result<Vec<RocPoint>, EvalError> {
    if span.last() >= scores.len() {
        return Err(EvalError::ScoreLengthMismatch {
            expected: span.last() + 1,
            found: scores.len(),
        });
    }
    let mut points = Vec::with_capacity(thresholds.len());
    for &t in thresholds {
        let alarms: Vec<bool> = scores.iter().map(|&s| s >= t).collect();
        let a = analyze_alarms(&alarms, span)?;
        points.push(RocPoint {
            threshold: t,
            hit: a.hit,
            false_alarm_rate: a.false_alarm_rate(),
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accounting() {
        let span = IncidentSpan::from_bounds(1, 2);
        let a = analyze_alarms(&[false, true, false, true], span).unwrap();
        assert!(a.hit);
        assert_eq!(a.span_alarms, 1);
        assert_eq!(a.false_alarms, 1);
        assert_eq!(a.positions, 4);
        assert_eq!(a.negatives, 2);
        assert!((a.false_alarm_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn miss_with_no_alarms() {
        let span = IncidentSpan::from_bounds(0, 1);
        let a = analyze_alarms(&[false, false, false], span).unwrap();
        assert!(!a.hit);
        assert_eq!(a.false_alarms, 0);
        assert_eq!(a.false_alarm_rate(), 0.0);
    }

    #[test]
    fn all_positions_in_span_gives_zero_negatives() {
        let span = IncidentSpan::from_bounds(0, 2);
        let a = analyze_alarms(&[true, true, true], span).unwrap();
        assert_eq!(a.negatives, 0);
        assert_eq!(a.false_alarm_rate(), 0.0);
    }

    #[test]
    fn length_mismatch_rejected() {
        let span = IncidentSpan::from_bounds(0, 5);
        assert!(matches!(
            analyze_alarms(&[true, false], span),
            Err(EvalError::ScoreLengthMismatch { .. })
        ));
    }

    #[test]
    fn sweep_monotonicity() {
        // Raising the threshold can only reduce false alarms.
        let span = IncidentSpan::from_bounds(2, 3);
        let scores = [0.2, 0.9, 1.0, 0.4, 0.6, 0.95];
        let thresholds = [0.1, 0.5, 0.95, 1.0];
        let pts = threshold_sweep(&scores, span, &thresholds).unwrap();
        for pair in pts.windows(2) {
            assert!(pair[1].false_alarm_rate <= pair[0].false_alarm_rate);
        }
        // Footnote 1: in-span max is 1.0, so the anomaly is hit at every
        // threshold.
        assert!(pts.iter().all(|p| p.hit));
    }

    #[test]
    fn sweep_loses_hit_above_inspan_max() {
        let span = IncidentSpan::from_bounds(0, 1);
        let scores = [0.4, 0.5, 0.9];
        let pts = threshold_sweep(&scores, span, &[0.5, 0.6]).unwrap();
        assert!(pts[0].hit);
        assert!(!pts[1].hit);
        // The 0.9 outside the span becomes a false alarm at both.
        assert_eq!(pts[0].false_alarm_rate, 1.0);
        assert_eq!(pts[1].false_alarm_rate, 1.0);
    }
}

//! Blind / weak / capable scoring of a detector against a labelled case.
//!
//! §5.5 of the paper: "a detector is described as *blind*, in the case
//! where the detector response is 0 for every sequence of the incident
//! span; *weak*, in the case where the maximum detector response
//! registered in the incident span is greater than 0 and less than 1 ...
//! and *capable*, in the case where at least one detector response of 1
//! was registered in the incident span."

use serde::{Deserialize, Serialize};

use detdiv_sequence::Symbol;

use crate::detector::{response_count, TrainedModel};
use crate::error::EvalError;
use crate::incident::IncidentSpan;

/// The paper's three-way verdict on a detector's response to an anomaly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Classification {
    /// Response 0 everywhere in the incident span: the anomaly is
    /// perceived as completely normal.
    Blind,
    /// A positive but sub-maximal response: "something definitely
    /// abnormal has been seen", but a maximal-response threshold would
    /// not fire.
    Weak,
    /// At least one maximal response in the incident span: the anomaly is
    /// detected regardless of where the detection threshold is set.
    Capable,
}

impl Classification {
    /// Whether this verdict counts as a detection (a star in the paper's
    /// performance maps).
    #[inline]
    pub const fn is_detection(self) -> bool {
        matches!(self, Classification::Capable)
    }
}

impl std::fmt::Display for Classification {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Classification::Blind => "blind",
            Classification::Weak => "weak",
            Classification::Capable => "capable",
        };
        f.write_str(s)
    }
}

/// The result of evaluating one detector on one labelled test stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionOutcome {
    classification: Classification,
    max_response: f64,
    max_position: usize,
    span: IncidentSpan,
}

impl DetectionOutcome {
    /// The blind/weak/capable verdict.
    #[inline]
    pub const fn classification(&self) -> Classification {
        self.classification
    }

    /// The largest response registered within the incident span.
    #[inline]
    pub const fn max_response(&self) -> f64 {
        self.max_response
    }

    /// The window-start position at which the maximum response occurred.
    #[inline]
    pub const fn max_position(&self) -> usize {
        self.max_position
    }

    /// The incident span that was scored.
    #[inline]
    pub const fn span(&self) -> IncidentSpan {
        self.span
    }
}

/// A test stream labelled with its injected anomaly, together with the
/// training stream the detector should learn from.
///
/// Implemented by `detdiv_synth::InjectedCase`; kept as a trait here so
/// the evaluation framework stays independent of any particular data
/// source (synthetic corpora, parsed traces, hand-built fixtures).
pub trait LabeledCase {
    /// The training (normal) stream.
    fn training(&self) -> &[Symbol];
    /// The test stream containing the injected anomaly.
    fn test_stream(&self) -> &[Symbol];
    /// Index of the anomaly's first element within the test stream.
    fn injection_position(&self) -> usize;
    /// Length of the injected anomaly (AS).
    fn anomaly_len(&self) -> usize;
}

/// A self-contained labelled case, useful for fixtures and tests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OwnedCase {
    /// The training (normal) stream.
    pub training: Vec<Symbol>,
    /// The test stream containing the injected anomaly.
    pub test: Vec<Symbol>,
    /// Index of the anomaly's first element within the test stream.
    pub injection_position: usize,
    /// Length of the injected anomaly.
    pub anomaly_len: usize,
}

impl LabeledCase for OwnedCase {
    fn training(&self) -> &[Symbol] {
        &self.training
    }
    fn test_stream(&self) -> &[Symbol] {
        &self.test
    }
    fn injection_position(&self) -> usize {
        self.injection_position
    }
    fn anomaly_len(&self) -> usize {
        self.anomaly_len
    }
}

/// Classifies a response vector against an incident span.
///
/// `maximal_floor` is the smallest response treated as maximal (1.0 for
/// exact detectors; `1 − r` for the probabilistic detectors, see
/// `DESIGN.md` §2.3).
///
/// # Errors
///
/// Returns [`EvalError::ScoreLengthMismatch`] if the span does not fit
/// within `scores`.
pub fn classify_scores(
    scores: &[f64],
    span: IncidentSpan,
    maximal_floor: f64,
) -> Result<DetectionOutcome, EvalError> {
    let in_span = span.slice(scores)?;
    let (mut max_response, mut max_offset) = (f64::NEG_INFINITY, 0);
    for (i, &s) in in_span.iter().enumerate() {
        if s > max_response {
            max_response = s;
            max_offset = i;
        }
    }
    let classification = if max_response >= maximal_floor {
        Classification::Capable
    } else if max_response > 0.0 {
        Classification::Weak
    } else {
        Classification::Blind
    };
    Ok(DetectionOutcome {
        classification,
        max_response,
        max_position: span.first() + max_offset,
        span,
    })
}

/// Scores an (already trained) detector on a labelled case: computes the
/// incident span for the detector's window, runs the detector over the
/// test stream, and classifies the in-span responses.
///
/// The caller trains the detector (training is the expensive step and is
/// often shared across cases).
///
/// # Errors
///
/// * [`EvalError::StreamShorterThanWindow`] /
///   [`EvalError::AnomalyOutOfBounds`] / [`EvalError::EmptyAnomaly`] from
///   span computation;
/// * [`EvalError::ScoreLengthMismatch`] if the detector produced a
///   response vector of unexpected length.
///
/// # Examples
///
/// ```
/// use detdiv_core::{
///     evaluate_case, Classification, OwnedCase, SequenceAnomalyDetector, TrainedModel,
/// };
/// use detdiv_sequence::{symbols, NgramSet, Symbol};
///
/// /// A miniature Stide: foreign window => 1, known window => 0.
/// struct MiniStide { dw: usize, db: NgramSet }
/// impl TrainedModel for MiniStide {
///     fn name(&self) -> &str { "mini-stide" }
///     fn window(&self) -> usize { self.dw }
///     fn scores(&self, test: &[Symbol]) -> Vec<f64> {
///         if test.len() < self.dw { return Vec::new(); }
///         test.windows(self.dw)
///             .map(|w| if self.db.contains(w) { 0.0 } else { 1.0 })
///             .collect()
///     }
/// }
/// impl SequenceAnomalyDetector for MiniStide {
///     fn train(&mut self, t: &[Symbol]) { self.db = NgramSet::from_stream(t, self.dw); }
/// }
///
/// let case = OwnedCase {
///     training: symbols(&[1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4]),
///     test: symbols(&[1, 2, 3, 4, 1, 3, 2, 4, 1, 2, 3, 4]),
///     injection_position: 5,
///     anomaly_len: 2, // the (3, 2) at positions 5..7
/// };
/// let mut det = MiniStide { dw: 2, db: NgramSet::new(2) };
/// det.train(case.training.as_slice());
/// let outcome = evaluate_case(&det, &case).unwrap();
/// assert_eq!(outcome.classification(), Classification::Capable);
/// ```
pub fn evaluate_case<D>(detector: &D, case: &dyn LabeledCase) -> Result<DetectionOutcome, EvalError>
where
    D: TrainedModel + ?Sized,
{
    let scores = detector.scores(case.test_stream());
    evaluate_scores(detector, case, &scores)
}

/// Classifies an externally produced response vector against a labelled
/// case, exactly as [`evaluate_case`] classifies the detector's own
/// batch responses.
///
/// This is the seam the streaming engine plugs into: `detdiv-stream`
/// produces `scores` one event at a time through the push API, then
/// hands them here so batch and streamed evaluations share one
/// classification (and telemetry) path. `scores[i]` must be the
/// response covering `test[i .. i + detector.window()]` — the indexing
/// convention of [`TrainedModel::scores`].
///
/// # Errors
///
/// The same geometry and length errors as [`evaluate_case`].
pub fn evaluate_scores<D>(
    detector: &D,
    case: &dyn LabeledCase,
    scores: &[f64],
) -> Result<DetectionOutcome, EvalError>
where
    D: TrainedModel + ?Sized,
{
    let test = case.test_stream();
    let span = IncidentSpan::compute(
        test.len(),
        detector.window(),
        case.injection_position(),
        case.anomaly_len(),
    )?;
    let expected = response_count(test.len(), detector.window());
    if scores.len() != expected {
        return Err(EvalError::ScoreLengthMismatch {
            expected,
            found: scores.len(),
        });
    }
    let outcome = classify_scores(scores, span, detector.maximal_response_floor());
    if detdiv_obs::telemetry_enabled() {
        detdiv_obs::incr_counter("eval/cases", 1);
        match &outcome {
            Ok(o) => {
                detdiv_obs::incr_counter(&format!("eval/classified/{}", o.classification()), 1);
            }
            Err(_) => detdiv_obs::incr_counter("eval/errors", 1),
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(a: usize, b: usize) -> IncidentSpan {
        IncidentSpan::from_bounds(a, b)
    }

    #[test]
    fn blind_weak_capable_boundaries() {
        let scores = [0.0, 0.0, 0.0, 0.0];
        let o = classify_scores(&scores, span(1, 3), 1.0).unwrap();
        assert_eq!(o.classification(), Classification::Blind);
        assert!(!o.classification().is_detection());

        let scores = [0.0, 0.4, 0.0, 0.0];
        let o = classify_scores(&scores, span(1, 3), 1.0).unwrap();
        assert_eq!(o.classification(), Classification::Weak);
        assert_eq!(o.max_response(), 0.4);
        assert_eq!(o.max_position(), 1);

        let scores = [0.0, 0.4, 1.0, 0.0];
        let o = classify_scores(&scores, span(1, 3), 1.0).unwrap();
        assert_eq!(o.classification(), Classification::Capable);
        assert_eq!(o.max_position(), 2);
    }

    #[test]
    fn maximal_floor_shifts_capability() {
        // A rare-transition response of 0.995 is weak at floor 1.0 but
        // capable under the probabilistic detectors' floor of 1 - 0.005.
        let scores = [0.0, 0.995, 0.0];
        let strict = classify_scores(&scores, span(0, 2), 1.0).unwrap();
        assert_eq!(strict.classification(), Classification::Weak);
        let tolerant = classify_scores(&scores, span(0, 2), 0.995).unwrap();
        assert_eq!(tolerant.classification(), Classification::Capable);
    }

    #[test]
    fn out_of_span_responses_are_ignored() {
        // Maximal response *outside* the span must not count.
        let scores = [1.0, 0.0, 0.0, 0.0];
        let o = classify_scores(&scores, span(1, 3), 1.0).unwrap();
        assert_eq!(o.classification(), Classification::Blind);
    }

    #[test]
    fn classify_detects_span_overflow() {
        let scores = [0.0, 0.0];
        assert!(matches!(
            classify_scores(&scores, span(1, 3), 1.0),
            Err(EvalError::ScoreLengthMismatch { .. })
        ));
    }

    #[test]
    fn classification_display() {
        assert_eq!(Classification::Blind.to_string(), "blind");
        assert_eq!(Classification::Weak.to_string(), "weak");
        assert_eq!(Classification::Capable.to_string(), "capable");
    }

    /// Constant-score detector for plumbing tests.
    struct Constant {
        dw: usize,
        value: f64,
    }

    impl TrainedModel for Constant {
        fn name(&self) -> &str {
            "constant"
        }
        fn window(&self) -> usize {
            self.dw
        }
        fn scores(&self, test: &[Symbol]) -> Vec<f64> {
            vec![self.value; response_count(test.len(), self.dw)]
        }
    }

    #[test]
    fn evaluate_case_plumbs_span_and_scores() {
        use detdiv_sequence::symbols;
        let case = OwnedCase {
            training: symbols(&[1, 2, 3]),
            test: symbols(&[1, 2, 3, 4, 5, 6, 7, 8]),
            injection_position: 3,
            anomaly_len: 2,
        };
        let det = Constant { dw: 3, value: 0.5 };
        let o = evaluate_case(&det, &case).unwrap();
        assert_eq!(o.classification(), Classification::Weak);
        assert_eq!(o.span().first(), 1);
        assert_eq!(o.span().last(), 4);
    }

    #[test]
    fn evaluate_case_rejects_bad_geometry() {
        use detdiv_sequence::symbols;
        let case = OwnedCase {
            training: symbols(&[1, 2, 3]),
            test: symbols(&[1, 2]),
            injection_position: 0,
            anomaly_len: 1,
        };
        let det = Constant { dw: 3, value: 0.0 };
        assert!(matches!(
            evaluate_case(&det, &case),
            Err(EvalError::StreamShorterThanWindow { .. })
        ));
    }

    /// Detector lying about its response length.
    struct Liar;
    impl TrainedModel for Liar {
        fn name(&self) -> &str {
            "liar"
        }
        fn window(&self) -> usize {
            2
        }
        fn scores(&self, _test: &[Symbol]) -> Vec<f64> {
            vec![0.0]
        }
    }

    #[test]
    fn evaluate_case_rejects_wrong_score_length() {
        use detdiv_sequence::symbols;
        let case = OwnedCase {
            training: vec![],
            test: symbols(&[1, 2, 3, 4, 5]),
            injection_position: 2,
            anomaly_len: 1,
        };
        assert!(matches!(
            evaluate_case(&Liar, &case),
            Err(EvalError::ScoreLengthMismatch { .. })
        ));
    }
}

//! Error types for the evaluation framework.

use std::error::Error;
use std::fmt;

/// Errors arising from evaluation-framework operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EvalError {
    /// The test stream is shorter than the detector window, so no window
    /// fits and no response can be produced.
    StreamShorterThanWindow {
        /// Test-stream length.
        stream: usize,
        /// Detector window length.
        window: usize,
    },
    /// The labelled anomaly extends past the end of the test stream.
    AnomalyOutOfBounds {
        /// Injection position (index of the anomaly's first element).
        position: usize,
        /// Anomaly length.
        anomaly_len: usize,
        /// Test-stream length.
        stream: usize,
    },
    /// A labelled anomaly of length zero was supplied.
    EmptyAnomaly,
    /// Two coverage maps with different grids were combined.
    GridMismatch,
    /// A grid coordinate was outside the map.
    CellOutOfGrid {
        /// Anomaly size requested.
        anomaly_size: usize,
        /// Detector window requested.
        window: usize,
    },
    /// A detector produced a response vector of unexpected length.
    ScoreLengthMismatch {
        /// Expected number of window positions.
        expected: usize,
        /// Number of scores produced.
        found: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::StreamShorterThanWindow { stream, window } => write!(
                f,
                "test stream of length {stream} is shorter than detector window {window}"
            ),
            EvalError::AnomalyOutOfBounds {
                position,
                anomaly_len,
                stream,
            } => write!(
                f,
                "anomaly of length {anomaly_len} at position {position} exceeds stream of length {stream}"
            ),
            EvalError::EmptyAnomaly => write!(f, "anomaly length must be positive"),
            EvalError::GridMismatch => {
                write!(f, "coverage maps span different (anomaly size, window) grids")
            }
            EvalError::CellOutOfGrid {
                anomaly_size,
                window,
            } => write!(
                f,
                "cell (anomaly size {anomaly_size}, window {window}) outside the map's grid"
            ),
            EvalError::ScoreLengthMismatch { expected, found } => write!(
                f,
                "detector produced {found} responses, expected {expected}"
            ),
        }
    }
}

impl Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EvalError::StreamShorterThanWindow {
            stream: 3,
            window: 5,
        };
        assert!(e.to_string().contains("shorter"));
        let e = EvalError::GridMismatch;
        assert!(e.to_string().contains("grids"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<EvalError>();
    }
}

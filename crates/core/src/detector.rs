//! The generic shape of a sequence-based anomaly detector.
//!
//! §4.2 of the paper describes the detectors under study as consisting of
//! three components: (1) a mechanism for modelling normal behaviour —
//! invariant across the study: a database acquired by sliding a
//! fixed-length window over training data; (2) a similarity metric — the
//! sole axis of diversity; and (3) a thresholding mechanism. This module
//! fixes that shape as a trait so the evaluation framework can treat all
//! four (and any future) detectors uniformly.

use detdiv_sequence::Symbol;

/// The immutable scoring surface of a trained sequence anomaly detector.
///
/// This is the *train-phase output* of a [`SequenceAnomalyDetector`]:
/// everything needed to score test streams, and nothing that mutates the
/// model. Because scoring takes `&self` and the trait requires
/// `Send + Sync`, one trained model can be shared across threads (e.g.
/// behind an `Arc` in the `detdiv-par` pool, or memoized by
/// `detdiv-cache`) without re-training per consumer.
///
/// Implementations produce one **anomaly response in `[0, 1]`** per
/// window position of a test stream: `0` means completely normal, `1`
/// maximally anomalous (§5.5). The response at index `i` covers the
/// window `test[i .. i + window()]`; for next-element predictors (the
/// Markov- and neural-network-based detectors) that window comprises the
/// DW − 1 context elements *and* the predicted element, so all detectors
/// share one indexing convention.
///
/// Implementations must be **pure under scoring**: repeated calls to
/// [`TrainedModel::scores`] on the same stream — from one thread or
/// several — return the same responses. The conformance suite in
/// `crates/core/tests/conformance.rs` enforces this contract for every
/// detector family in the workspace.
pub trait TrainedModel: Send + Sync {
    /// Human-readable detector name, used in maps and reports.
    fn name(&self) -> &str;

    /// The detector-window length DW this instance was configured with.
    fn window(&self) -> usize;

    /// Anomaly responses for every window position of `test`, each in
    /// `[0, 1]`.
    ///
    /// Returns exactly `test.len() - window() + 1` responses, or an empty
    /// vector when the stream is shorter than the window.
    fn scores(&self, test: &[Symbol]) -> Vec<f64>;

    /// Anomaly response of a *single* full window, bit-identical to the
    /// response [`TrainedModel::scores`] would assign that window inside
    /// any stream.
    ///
    /// This is the streaming hot path (`detdiv-stream` calls it once per
    /// event): families whose per-window computation has an
    /// allocation-free form override it; the default delegates to
    /// [`TrainedModel::scores`] on the one-window slice, which is always
    /// correct because every detector in this workspace scores a window
    /// as a pure function of its contents (the batch↔stream differential
    /// suite in `crates/stream/tests/differential.rs` enforces the
    /// bit-identity).
    ///
    /// `window.len()` must equal [`TrainedModel::window`]; the default
    /// returns `1.0` (maximally anomalous) for malformed input rather
    /// than panicking on the serving path.
    fn score_one(&self, window: &[Symbol]) -> f64 {
        self.scores(window).pop().unwrap_or(1.0)
    }

    /// The smallest response this detector's thresholding treats as a
    /// *maximal* (alarm-certain) response.
    ///
    /// Binary and similarity detectors (Stide, Lane & Brodley) keep the
    /// default of `1.0`: only exact maximal responses count. The
    /// probabilistic detectors override this to `1 − r` where `r` is the
    /// rare-sequence threshold, per the maximal-response rule documented
    /// in `DESIGN.md` §2.3.
    fn maximal_response_floor(&self) -> f64 {
        1.0
    }

    /// A rough estimate of the trained model's resident size in bytes,
    /// used by `detdiv-cache` for eviction accounting. Best-effort: the
    /// default of `0` means "unknown/negligible"; families with real
    /// databases override it.
    fn approx_bytes(&self) -> usize {
        0
    }
}

/// A sequence-based anomaly detector operating on fixed-length windows:
/// the **train phase** layered on top of [`TrainedModel`].
///
/// §4.2's three components map onto the two traits as follows: the
/// model-acquisition mechanism is [`SequenceAnomalyDetector::train`];
/// the similarity metric and thresholding are the [`TrainedModel`]
/// supertrait. Once trained, a detector *is* its trained model — the
/// evaluation framework scores through `&dyn TrainedModel` and never
/// needs `&mut` again.
pub trait SequenceAnomalyDetector: TrainedModel {
    /// Acquires the model of normal behaviour from `training`.
    ///
    /// Called once per experiment; a second call replaces the model with
    /// one trained on the new stream only. Training on the same stream
    /// twice must produce equivalent models (identical scores on any
    /// test stream) — the property `detdiv-cache` relies on.
    fn train(&mut self, training: &[Symbol]);

    /// The smallest usable window for this detector family (2 for the
    /// Markov- and neural-network-based detectors, which need at least
    /// one context element plus the predicted element; 1 is technically
    /// possible but excluded for Stide and L&B as well, see §6).
    fn min_window(&self) -> usize {
        2
    }
}

impl<D: TrainedModel + ?Sized> TrainedModel for Box<D> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn window(&self) -> usize {
        (**self).window()
    }
    fn scores(&self, test: &[Symbol]) -> Vec<f64> {
        (**self).scores(test)
    }
    fn score_one(&self, window: &[Symbol]) -> f64 {
        (**self).score_one(window)
    }
    fn maximal_response_floor(&self) -> f64 {
        (**self).maximal_response_floor()
    }
    fn approx_bytes(&self) -> usize {
        (**self).approx_bytes()
    }
}

impl<D: SequenceAnomalyDetector + ?Sized> SequenceAnomalyDetector for Box<D> {
    fn train(&mut self, training: &[Symbol]) {
        (**self).train(training)
    }
    fn min_window(&self) -> usize {
        (**self).min_window()
    }
}

/// Number of window positions a detector with window `window` produces
/// on a stream of length `stream_len` (zero if the window does not fit).
#[inline]
pub fn response_count(stream_len: usize, window: usize) -> usize {
    if window == 0 || stream_len < window {
        0
    } else {
        stream_len - window + 1
    }
}

/// Binarises responses into alarms at `threshold`: `score >= threshold`.
///
/// # Examples
///
/// ```
/// use detdiv_core::alarms_at;
///
/// assert_eq!(alarms_at(&[0.0, 0.5, 1.0], 0.5), vec![false, true, true]);
/// ```
pub fn alarms_at(scores: &[f64], threshold: f64) -> Vec<bool> {
    scores.iter().map(|&s| s >= threshold).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_sequence::symbols;

    /// A toy detector flagging any window containing symbol 9.
    struct FlagNine {
        window: usize,
    }

    impl TrainedModel for FlagNine {
        fn name(&self) -> &str {
            "flag-nine"
        }
        fn window(&self) -> usize {
            self.window
        }
        fn scores(&self, test: &[Symbol]) -> Vec<f64> {
            if test.len() < self.window {
                return Vec::new();
            }
            test.windows(self.window)
                .map(|w| {
                    if w.iter().any(|s| s.id() == 9) {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect()
        }
    }

    impl SequenceAnomalyDetector for FlagNine {
        fn train(&mut self, _training: &[Symbol]) {}
    }

    #[test]
    fn scores_len_matches_response_count() {
        let d = FlagNine { window: 3 };
        let s = symbols(&[1, 2, 9, 4, 5]);
        assert_eq!(d.scores(&s).len(), response_count(s.len(), 3));
        assert_eq!(d.scores(&symbols(&[1, 2])).len(), 0);
    }

    #[test]
    fn response_count_edges() {
        assert_eq!(response_count(10, 3), 8);
        assert_eq!(response_count(3, 3), 1);
        assert_eq!(response_count(2, 3), 0);
        assert_eq!(response_count(0, 1), 0);
        assert_eq!(response_count(5, 0), 0);
    }

    #[test]
    fn boxed_detectors_delegate() {
        let mut d: Box<dyn SequenceAnomalyDetector> = Box::new(FlagNine { window: 2 });
        d.train(&symbols(&[1, 2]));
        assert_eq!(d.name(), "flag-nine");
        assert_eq!(d.window(), 2);
        assert_eq!(d.maximal_response_floor(), 1.0);
        assert_eq!(d.min_window(), 2);
        assert_eq!(d.scores(&symbols(&[1, 9, 2])), vec![1.0, 1.0]);
    }

    #[test]
    fn alarms_threshold_is_inclusive() {
        assert_eq!(alarms_at(&[0.995, 0.994], 0.995), vec![true, false]);
    }

    #[test]
    fn default_score_one_matches_batch_scores() {
        let d = FlagNine { window: 3 };
        let s = symbols(&[1, 2, 9, 4, 5, 9, 6]);
        let batch = d.scores(&s);
        for (i, w) in s.windows(3).enumerate() {
            assert_eq!(d.score_one(w).to_bits(), batch[i].to_bits());
        }
        // Malformed input degrades to maximally anomalous, not a panic.
        assert_eq!(d.score_one(&symbols(&[1])), 1.0);
    }
}

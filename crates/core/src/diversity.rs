//! Pairwise diversity analysis over a set of coverage maps.
//!
//! The paper's motivation (§1): provide defenders with "a basis upon
//! which to select amongst diverse detector designs" and "knowledge
//! regarding the effects of combining more than one detector". A
//! [`DiversityMatrix`] condenses that basis: for every ordered detector
//! pair, the *gain* (cells the second detects that the first misses) and
//! for every unordered pair the Jaccard overlap of their detection
//! regions. A gain of zero in both directions is the paper's
//! "no-advantage" combination (Stide + L&B); a large one-directional
//! gain identifies a subset relation (Stide ⊂ Markov).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::coverage::CoverageMap;
use crate::error::EvalError;

/// Pairwise coverage relations over a set of detectors.
///
/// # Examples
///
/// ```
/// use detdiv_core::{CellStatus, CoverageMap, DiversityMatrix};
///
/// let mut a = CoverageMap::new("a", 2..=3, 2..=3);
/// let mut b = CoverageMap::new("b", 2..=3, 2..=3);
/// a.set(2, 2, CellStatus::Detect).unwrap();
/// b.set(2, 2, CellStatus::Detect).unwrap();
/// b.set(3, 3, CellStatus::Detect).unwrap();
///
/// let m = DiversityMatrix::from_maps(&[a, b]).unwrap();
/// assert_eq!(m.gain(0, 1).unwrap(), 1); // b adds one cell to a
/// assert_eq!(m.gain(1, 0).unwrap(), 0); // a adds nothing to b
/// assert!((m.jaccard(0, 1).unwrap() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiversityMatrix {
    names: Vec<String>,
    detections: Vec<usize>,
    /// `gains[i * n + j]` = cells detector `j` detects that `i` misses.
    gains: Vec<usize>,
    /// `jaccards[i * n + j]`, symmetric.
    jaccards: Vec<f64>,
}

impl DiversityMatrix {
    /// Builds the matrix from one coverage map per detector.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::GridMismatch`] if the maps span different
    /// grids, and [`EvalError::EmptyAnomaly`] is never returned; an
    /// empty input yields an empty matrix.
    pub fn from_maps(maps: &[CoverageMap]) -> Result<Self, EvalError> {
        let n = maps.len();
        let names: Vec<String> = maps.iter().map(|m| m.detector().to_owned()).collect();
        let detections: Vec<usize> = maps.iter().map(CoverageMap::detection_count).collect();
        let mut gains = vec![0usize; n * n];
        let mut jaccards = vec![1.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                gains[i * n + j] = maps[i].gain_from(&maps[j])?;
                jaccards[i * n + j] = maps[i].jaccard(&maps[j])?;
            }
        }
        Ok(DiversityMatrix {
            names,
            detections,
            gains,
            jaccards,
        })
    }

    /// Number of detectors in the matrix.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the matrix holds no detectors.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Detector names, in input order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Detection-cell count of detector `i`.
    pub fn detections(&self, i: usize) -> Option<usize> {
        self.detections.get(i).copied()
    }

    /// Cells detector `j` detects that detector `i` misses.
    pub fn gain(&self, i: usize, j: usize) -> Option<usize> {
        let n = self.len();
        if i >= n || j >= n {
            return None;
        }
        Some(self.gains[i * n + j])
    }

    /// Jaccard overlap of detectors `i` and `j`'s detection regions.
    pub fn jaccard(&self, i: usize, j: usize) -> Option<f64> {
        let n = self.len();
        if i >= n || j >= n {
            return None;
        }
        Some(self.jaccards[i * n + j])
    }

    /// Unordered pairs `(i, j)` whose union detects no more than the
    /// stronger member alone — deploying both affords no coverage gain.
    /// This is the paper's Stide + L&B situation (§8), and also holds
    /// for any subset pair such as Stide + Markov, where the value of
    /// the combination lies in false-alarm suppression rather than
    /// coverage.
    pub fn no_coverage_gain_pairs(&self) -> Vec<(usize, usize)> {
        let n = self.len();
        let mut out = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if self.gains[i * n + j] == 0 || self.gains[j * n + i] == 0 {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Unordered pairs `(i, j)` that are genuinely complementary: each
    /// detects cells the other misses, so the union strictly beats both.
    pub fn complementary_pairs(&self) -> Vec<(usize, usize)> {
        let n = self.len();
        let mut out = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if self.gains[i * n + j] > 0 && self.gains[j * n + i] > 0 {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Ordered pairs `(i, j)` where `i`'s detection region is a subset
    /// of `j`'s (adding `j` to `i` helps, adding `i` to `j` does not).
    pub fn subset_pairs(&self) -> Vec<(usize, usize)> {
        let n = self.len();
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j && self.gains[j * n + i] == 0 && self.gains[i * n + j] > 0 {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Renders the gain matrix as a fixed-width table (rows: base
    /// detector; columns: added detector; cells: added detections).
    pub fn render(&self) -> String {
        let n = self.len();
        let width = self.names.iter().map(|s| s.len()).max().unwrap_or(4).max(5);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<w$}  cells",
            "gain of adding ->",
            w = width + 2
        ));
        for name in &self.names {
            out.push_str(&format!(" {name:>w$}", w = width));
        }
        out.push('\n');
        for i in 0..n {
            out.push_str(&format!(
                "{:<w$}  {:>5}",
                self.names[i],
                self.detections[i],
                w = width + 2
            ));
            for j in 0..n {
                if i == j {
                    out.push_str(&format!(" {:>w$}", "-", w = width));
                } else {
                    out.push_str(&format!(" {:>w$}", self.gains[i * n + j], w = width));
                }
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for DiversityMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::CellStatus;

    fn map(name: &str, detect: &[(usize, usize)]) -> CoverageMap {
        let mut m = CoverageMap::new(name, 2..=4, 2..=4);
        for a in 2..=4 {
            for w in 2..=4 {
                m.set(a, w, CellStatus::Blind).unwrap();
            }
        }
        for &(a, w) in detect {
            m.set(a, w, CellStatus::Detect).unwrap();
        }
        m
    }

    fn fixture() -> DiversityMatrix {
        // markov: everything; stide: diagonal-ish subset; lb: nothing.
        let markov = map(
            "markov",
            &[
                (2, 2),
                (2, 3),
                (2, 4),
                (3, 3),
                (3, 4),
                (4, 4),
                (3, 2),
                (4, 2),
                (4, 3),
            ],
        );
        let stide = map("stide", &[(2, 2), (2, 3), (2, 4), (3, 3), (3, 4), (4, 4)]);
        let lb = map("lb", &[]);
        DiversityMatrix::from_maps(&[stide.clone(), markov.clone(), lb.clone()]).unwrap()
    }

    #[test]
    fn gains_and_jaccards() {
        let m = fixture();
        assert_eq!(m.len(), 3);
        assert_eq!(m.gain(0, 1).unwrap(), 3); // markov adds 3 to stide
        assert_eq!(m.gain(1, 0).unwrap(), 0); // stide adds nothing to markov
        assert_eq!(m.gain(0, 2).unwrap(), 0); // lb adds nothing
        assert_eq!(m.detections(1).unwrap(), 9);
        assert!((m.jaccard(0, 1).unwrap() - 6.0 / 9.0).abs() < 1e-12);
        assert_eq!(m.jaccard(0, 3), None);
        assert_eq!(m.gain(5, 0), None);
    }

    #[test]
    fn relation_extraction() {
        let m = fixture();
        // Every pair here is a subset pair, so no combination adds
        // coverage beyond its stronger member.
        assert_eq!(m.no_coverage_gain_pairs(), vec![(0, 1), (0, 2), (1, 2)]);
        assert!(m.complementary_pairs().is_empty());
        // stide subset-of markov; lb subset-of stide and markov.
        let subsets = m.subset_pairs();
        assert!(subsets.contains(&(0, 1)));
        assert!(subsets.contains(&(2, 0)));
        assert!(subsets.contains(&(2, 1)));
        assert!(!subsets.contains(&(1, 0)));
    }

    #[test]
    fn complementary_detectors_are_recognised() {
        let left = map("left", &[(2, 2), (2, 3)]);
        let right = map("right", &[(4, 4), (4, 3)]);
        let m = DiversityMatrix::from_maps(&[left, right]).unwrap();
        assert_eq!(m.complementary_pairs(), vec![(0, 1)]);
        assert!(m.no_coverage_gain_pairs().is_empty());
        assert_eq!(m.jaccard(0, 1).unwrap(), 0.0);
    }

    #[test]
    fn empty_input_is_ok() {
        let m = DiversityMatrix::from_maps(&[]).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn grid_mismatch_rejected() {
        let a = CoverageMap::new("a", 2..=3, 2..=3);
        let b = CoverageMap::new("b", 2..=4, 2..=3);
        assert!(matches!(
            DiversityMatrix::from_maps(&[a, b]),
            Err(EvalError::GridMismatch)
        ));
    }

    #[test]
    fn render_lists_all_names() {
        let m = fixture();
        let r = m.render();
        for name in m.names() {
            assert!(r.contains(name.as_str()), "{r}");
        }
        assert_eq!(m.to_string(), r);
    }
}

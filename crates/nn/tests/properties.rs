//! Property tests for the neural-network substrate.

use detdiv_nn::{encode_context, sigmoid, softmax_in_place, Mlp, MlpConfig};
use proptest::prelude::*;

proptest! {
    /// The forward pass always emits a probability distribution, for any
    /// architecture and input.
    #[test]
    fn forward_is_a_distribution(
        hidden in 1usize..12,
        outputs in 1usize..8,
        seed in 0u64..1000,
        input in prop::collection::vec(-3.0f64..3.0, 4),
    ) {
        let net = Mlp::new(MlpConfig::new(vec![4, hidden, outputs]).with_seed(seed)).unwrap();
        let out = net.forward(&input).unwrap();
        prop_assert_eq!(out.len(), outputs);
        let sum: f64 = out.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(out.iter().all(|&p| p > 0.0 && p.is_finite()));
    }

    /// Softmax output is invariant under constant shifts of the logits.
    #[test]
    fn softmax_shift_invariance(
        logits in prop::collection::vec(-20.0f64..20.0, 1..8),
        shift in -100.0f64..100.0,
    ) {
        let mut a = logits.clone();
        let mut b: Vec<f64> = logits.iter().map(|x| x + shift).collect();
        softmax_in_place(&mut a);
        softmax_in_place(&mut b);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// Sigmoid stays in (0, 1) and is monotone.
    #[test]
    fn sigmoid_bounds_and_monotonicity(x in -1e6f64..1e6, dx in 0.0f64..10.0) {
        let y = sigmoid(x);
        prop_assert!((0.0..=1.0).contains(&y));
        prop_assert!(sigmoid(x + dx) >= y);
    }

    /// Training on a single deterministic example drives its loss down.
    #[test]
    fn training_reduces_loss(seed in 0u64..200, target in 0usize..3) {
        let mut net = Mlp::new(
            MlpConfig::new(vec![3, 6, 3])
                .with_seed(seed)
                .with_learning_rate(0.3)
                .with_momentum(0.5),
        )
        .unwrap();
        let input = encode_context(&[target], 3);
        let data = [(input.clone(), target, 1.0)];
        let first = net.train_epoch(&data).unwrap();
        for _ in 0..60 {
            net.train_epoch(&data).unwrap();
        }
        let last = net.train_epoch(&data).unwrap();
        prop_assert!(last < first, "loss {first} -> {last}");
        prop_assert_eq!(net.predict_class(&input).unwrap(), target);
    }

    /// Weight scaling of the dataset leaves the learned predictions
    /// unchanged (the epoch normalises total weight).
    #[test]
    fn weight_scale_invariance(scale in 0.5f64..100.0) {
        let build = || {
            Mlp::new(
                MlpConfig::new(vec![2, 5, 2])
                    .with_seed(9)
                    .with_learning_rate(0.2),
            )
            .unwrap()
        };
        let base = [
            (vec![1.0, 0.0], 0usize, 3.0),
            (vec![0.0, 1.0], 1, 1.0),
        ];
        let scaled: Vec<(Vec<f64>, usize, f64)> = base
            .iter()
            .map(|(x, t, w)| (x.clone(), *t, w * scale))
            .collect();
        let mut a = build();
        let mut b = build();
        for _ in 0..30 {
            a.train_epoch(&base).unwrap();
            b.train_epoch(&scaled).unwrap();
        }
        let pa = a.forward(&[1.0, 0.0]).unwrap();
        let pb = b.forward(&[1.0, 0.0]).unwrap();
        for (x, y) in pa.iter().zip(&pb) {
            prop_assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    /// One-hot context encoding has exactly one 1 per position block.
    #[test]
    fn one_hot_blocks(context in prop::collection::vec(0usize..5, 1..6)) {
        let v = encode_context(&context, 5);
        prop_assert_eq!(v.len(), context.len() * 5);
        for (i, &c) in context.iter().enumerate() {
            let block = &v[i * 5..(i + 1) * 5];
            prop_assert_eq!(block.iter().sum::<f64>(), 1.0);
            prop_assert_eq!(block[c], 1.0);
        }
    }
}

//! A multilayer feed-forward network trained by backpropagation.
//!
//! This is the substrate for the paper's neural-network-based detector
//! (Debar et al. 1992): a classic MLP with sigmoid hidden units, a
//! softmax output layer over the alphabet, cross-entropy loss, and
//! stochastic gradient descent with momentum — the parameterisation
//! (learning constant, number of hidden nodes, momentum constant) whose
//! balance the paper singles out as the detector's operational caveat
//! (§7, citing Zurada).

use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::activation::{sigmoid, sigmoid_prime_from_output, softmax_in_place};
use crate::error::NnError;

/// Hyperparameters of an [`Mlp`].
///
/// # Examples
///
/// ```
/// use detdiv_nn::MlpConfig;
///
/// let cfg = MlpConfig::new(vec![16, 12, 8])
///     .with_learning_rate(0.3)
///     .with_momentum(0.9)
///     .with_seed(7);
/// assert_eq!(cfg.layers(), &[16, 12, 8]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    layers: Vec<usize>,
    learning_rate: f64,
    momentum: f64,
    seed: u64,
}

impl MlpConfig {
    /// Creates a configuration with the given layer widths (input first,
    /// output last), learning rate 0.5, momentum 0.5 and seed 0.
    pub fn new(layers: Vec<usize>) -> Self {
        MlpConfig {
            layers,
            learning_rate: 0.5,
            momentum: 0.5,
            seed: 0,
        }
    }

    /// Sets the learning constant.
    #[must_use]
    pub fn with_learning_rate(mut self, lr: f64) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Sets the momentum constant.
    #[must_use]
    pub fn with_momentum(mut self, momentum: f64) -> Self {
        self.momentum = momentum;
        self
    }

    /// Sets the weight-initialisation seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The layer widths, input first.
    pub fn layers(&self) -> &[usize] {
        &self.layers
    }

    /// The learning constant.
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    /// The momentum constant.
    pub fn momentum(&self) -> f64 {
        self.momentum
    }

    fn validate(&self) -> Result<(), NnError> {
        if self.layers.len() < 2 {
            return Err(NnError::TooFewLayers {
                found: self.layers.len(),
            });
        }
        if let Some(i) = self.layers.iter().position(|&w| w == 0) {
            return Err(NnError::EmptyLayer { layer: i });
        }
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return Err(NnError::InvalidHyperparameter {
                name: "learning_rate",
            });
        }
        if !(self.momentum.is_finite() && (0.0..1.0).contains(&self.momentum)) {
            return Err(NnError::InvalidHyperparameter { name: "momentum" });
        }
        Ok(())
    }
}

/// One dense layer's parameters and momentum state.
#[derive(Debug, Clone)]
struct Layer {
    inputs: usize,
    outputs: usize,
    /// Row-major `outputs x inputs`.
    weights: Vec<f64>,
    biases: Vec<f64>,
    weight_velocity: Vec<f64>,
    bias_velocity: Vec<f64>,
}

impl Layer {
    fn new(inputs: usize, outputs: usize, rng: &mut SmallRng) -> Self {
        // Small symmetric uniform initialisation scaled by fan-in.
        let scale = 1.0 / (inputs as f64).sqrt();
        let weights = (0..inputs * outputs)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        Layer {
            inputs,
            outputs,
            weights,
            biases: vec![0.0; outputs],
            weight_velocity: vec![0.0; inputs * outputs],
            bias_velocity: vec![0.0; outputs],
        }
    }

    /// `z = W x + b` into `out`.
    fn affine(&self, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(x.len(), self.inputs);
        debug_assert_eq!(out.len(), self.outputs);
        for (o, row) in out.iter_mut().zip(self.weights.chunks_exact(self.inputs)) {
            let mut acc = 0.0;
            for (w, xi) in row.iter().zip(x) {
                acc += w * xi;
            }
            *o = acc;
        }
        for (o, b) in out.iter_mut().zip(&self.biases) {
            *o += b;
        }
    }
}

/// A multilayer feed-forward network with sigmoid hidden units and a
/// softmax output layer, trained by SGD with momentum on cross-entropy.
///
/// # Examples
///
/// Learning a deterministic mapping:
///
/// ```
/// use detdiv_nn::{Mlp, MlpConfig};
///
/// let mut net = Mlp::new(MlpConfig::new(vec![2, 8, 2]).with_seed(1)).unwrap();
/// let data = [
///     (vec![0.0, 1.0], 0, 1.0),
///     (vec![1.0, 0.0], 1, 1.0),
/// ];
/// for _ in 0..200 {
///     net.train_epoch(&data).unwrap();
/// }
/// let p = net.forward(&[0.0, 1.0]).unwrap();
/// assert!(p[0] > 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    config: MlpConfig,
    layers: Vec<Layer>,
}

impl Mlp {
    /// Builds a network with randomly initialised weights.
    ///
    /// # Errors
    ///
    /// Returns an [`NnError`] if the configuration is invalid (fewer than
    /// two layers, an empty layer, or out-of-range hyperparameters).
    pub fn new(config: MlpConfig) -> Result<Self, NnError> {
        config.validate()?;
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let layers = config
            .layers
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], &mut rng))
            .collect();
        Ok(Mlp { config, layers })
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Width of the input layer.
    pub fn input_width(&self) -> usize {
        self.config.layers[0]
    }

    /// Width of the (softmax) output layer.
    pub fn output_width(&self) -> usize {
        *self.config.layers.last().expect("validated: >= 2 layers")
    }

    /// Runs the network forward, returning the softmax class
    /// distribution.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputSizeMismatch`] if `input` does not match
    /// the input layer's width.
    pub fn forward(&self, input: &[f64]) -> Result<Vec<f64>, NnError> {
        Ok(self.forward_trace(input)?.pop().expect("nonempty trace"))
    }

    /// Forward pass retaining every layer's activation (used by
    /// backpropagation). The first entry is the input itself; the last is
    /// the softmax output.
    fn forward_trace(&self, input: &[f64]) -> Result<Vec<Vec<f64>>, NnError> {
        if input.len() != self.input_width() {
            return Err(NnError::InputSizeMismatch {
                expected: self.input_width(),
                found: input.len(),
            });
        }
        let mut acts: Vec<Vec<f64>> = Vec::with_capacity(self.layers.len() + 1);
        acts.push(input.to_vec());
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let mut z = vec![0.0; layer.outputs];
            layer.affine(acts.last().expect("nonempty"), &mut z);
            if i == last {
                softmax_in_place(&mut z);
            } else {
                for v in z.iter_mut() {
                    *v = sigmoid(*v);
                }
            }
            acts.push(z);
        }
        Ok(acts)
    }

    /// Trains on a single `(input, target_class)` example with gradient
    /// scale `weight`, returning the example's cross-entropy loss.
    ///
    /// `weight` lets callers train on *weighted empirical distributions*
    /// — e.g. distinct `(context, next)` pairs weighted by their training
    /// counts — instead of on raw streams, which is equivalent in
    /// expectation and far cheaper on highly repetitive data.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputSizeMismatch`] or
    /// [`NnError::TargetOutOfRange`] on malformed examples.
    pub fn train_example(
        &mut self,
        input: &[f64],
        target: usize,
        weight: f64,
    ) -> Result<f64, NnError> {
        if target >= self.output_width() {
            return Err(NnError::TargetOutOfRange {
                target,
                outputs: self.output_width(),
            });
        }
        let acts = self.forward_trace(input)?;
        let output = acts.last().expect("nonempty");
        let loss = -(output[target].max(1e-300)).ln();

        // Softmax + cross-entropy: delta at the output is simply p - y.
        let mut delta: Vec<f64> = output.clone();
        delta[target] -= 1.0;

        let lr = self.config.learning_rate;
        let mu = self.config.momentum;

        // Walk layers backwards, updating with momentum.
        for li in (0..self.layers.len()).rev() {
            let input_act_owned;
            let input_act: &[f64] = {
                input_act_owned = acts[li].clone();
                &input_act_owned
            };

            // Delta to propagate to the previous layer (before its
            // activation derivative), computed against pre-update weights.
            let prev_delta: Option<Vec<f64>> = if li > 0 {
                let layer = &self.layers[li];
                let mut pd = vec![0.0; layer.inputs];
                for (o, d) in delta.iter().enumerate() {
                    let row = &layer.weights[o * layer.inputs..(o + 1) * layer.inputs];
                    for (p, w) in pd.iter_mut().zip(row) {
                        *p += w * d;
                    }
                }
                // Apply the sigmoid derivative of the previous layer's
                // output.
                for (p, y) in pd.iter_mut().zip(&acts[li]) {
                    *p *= sigmoid_prime_from_output(*y);
                }
                Some(pd)
            } else {
                None
            };

            let layer = &mut self.layers[li];
            for (o, d) in delta.iter().enumerate() {
                let g_scale = lr * weight * d;
                let row = &mut layer.weights[o * layer.inputs..(o + 1) * layer.inputs];
                let vrow = &mut layer.weight_velocity[o * layer.inputs..(o + 1) * layer.inputs];
                for ((w, v), x) in row.iter_mut().zip(vrow.iter_mut()).zip(input_act) {
                    *v = mu * *v - g_scale * x;
                    *w += *v;
                }
                let v = &mut layer.bias_velocity[o];
                *v = mu * *v - g_scale;
                layer.biases[o] += *v;
            }

            if let Some(pd) = prev_delta {
                delta = pd;
            }
        }
        Ok(loss * weight)
    }

    /// Trains one pass over `dataset` (`(input, target, weight)` triples),
    /// returning the mean weighted loss.
    ///
    /// Weights are normalised so the epoch's effective step size is
    /// independent of the absolute scale of the weights.
    ///
    /// # Errors
    ///
    /// Propagates the first malformed-example error encountered.
    pub fn train_epoch(&mut self, dataset: &[(Vec<f64>, usize, f64)]) -> Result<f64, NnError> {
        if dataset.is_empty() {
            return Ok(0.0);
        }
        let total_weight: f64 = dataset.iter().map(|(_, _, w)| w).sum();
        if total_weight <= 0.0 {
            return Ok(0.0);
        }
        let scale = dataset.len() as f64 / total_weight;
        let mut loss = 0.0;
        for (input, target, weight) in dataset {
            loss += self.train_example(input, *target, weight * scale)?;
        }
        Ok(loss / dataset.len() as f64)
    }

    /// The most probable class for `input`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputSizeMismatch`] on malformed input.
    pub fn predict_class(&self, input: &[f64]) -> Result<usize, NnError> {
        let out = self.forward(input)?;
        Ok(out
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("softmax is finite"))
            .map(|(i, _)| i)
            .expect("nonempty output"))
    }
}

impl fmt::Display for Mlp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mlp{:?}", self.config.layers)
    }
}

/// Writes the one-hot encoding of `class` (of `width` classes) into
/// `out[offset..offset + width]`.
///
/// # Panics
///
/// Panics if the target range is out of bounds or `class >= width`.
pub fn one_hot_into(out: &mut [f64], offset: usize, width: usize, class: usize) {
    assert!(class < width, "class {class} out of one-hot width {width}");
    let slot = &mut out[offset..offset + width];
    for v in slot.iter_mut() {
        *v = 0.0;
    }
    slot[class] = 1.0;
}

/// One-hot encodes a categorical context of `context` class indices, each
/// of `width` classes, as a flat vector of length `context.len() * width`.
///
/// # Panics
///
/// Panics if any class index is `>= width`.
///
/// # Examples
///
/// ```
/// use detdiv_nn::encode_context;
///
/// let v = encode_context(&[2, 0], 3);
/// assert_eq!(v, vec![0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
/// ```
pub fn encode_context(context: &[usize], width: usize) -> Vec<f64> {
    let mut out = vec![0.0; context.len() * width];
    for (i, &c) in context.iter().enumerate() {
        one_hot_into(&mut out, i * width, width, c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(matches!(
            Mlp::new(MlpConfig::new(vec![4])),
            Err(NnError::TooFewLayers { found: 1 })
        ));
        assert!(matches!(
            Mlp::new(MlpConfig::new(vec![4, 0, 2])),
            Err(NnError::EmptyLayer { layer: 1 })
        ));
        assert!(matches!(
            Mlp::new(MlpConfig::new(vec![4, 2]).with_learning_rate(0.0)),
            Err(NnError::InvalidHyperparameter {
                name: "learning_rate"
            })
        ));
        assert!(matches!(
            Mlp::new(MlpConfig::new(vec![4, 2]).with_momentum(1.0)),
            Err(NnError::InvalidHyperparameter { name: "momentum" })
        ));
    }

    #[test]
    fn forward_output_is_distribution() {
        let net = Mlp::new(MlpConfig::new(vec![3, 5, 4]).with_seed(9)).unwrap();
        let out = net.forward(&[0.1, 0.2, 0.3]).unwrap();
        assert_eq!(out.len(), 4);
        let sum: f64 = out.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(out.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn forward_rejects_wrong_width() {
        let net = Mlp::new(MlpConfig::new(vec![3, 2]).with_seed(1)).unwrap();
        assert!(matches!(
            net.forward(&[1.0]),
            Err(NnError::InputSizeMismatch {
                expected: 3,
                found: 1
            })
        ));
    }

    #[test]
    fn train_rejects_bad_target() {
        let mut net = Mlp::new(MlpConfig::new(vec![2, 2]).with_seed(1)).unwrap();
        assert!(matches!(
            net.train_example(&[0.0, 1.0], 5, 1.0),
            Err(NnError::TargetOutOfRange {
                target: 5,
                outputs: 2
            })
        ));
    }

    #[test]
    fn learns_xor() {
        let mut net = Mlp::new(
            MlpConfig::new(vec![2, 8, 2])
                .with_seed(3)
                .with_learning_rate(0.5)
                .with_momentum(0.9),
        )
        .unwrap();
        let data = [
            (vec![0.0, 0.0], 0usize, 1.0),
            (vec![0.0, 1.0], 1, 1.0),
            (vec![1.0, 0.0], 1, 1.0),
            (vec![1.0, 1.0], 0, 1.0),
        ];
        let mut final_loss = f64::INFINITY;
        for _ in 0..2000 {
            final_loss = net.train_epoch(&data).unwrap();
        }
        assert!(final_loss < 0.05, "failed to learn XOR, loss {final_loss}");
        for (x, y, _) in &data {
            assert_eq!(net.predict_class(x).unwrap(), *y);
        }
    }

    #[test]
    fn loss_decreases_over_training() {
        let mut net = Mlp::new(MlpConfig::new(vec![4, 6, 3]).with_seed(5)).unwrap();
        let data = [
            (vec![1.0, 0.0, 0.0, 0.0], 0usize, 1.0),
            (vec![0.0, 1.0, 0.0, 0.0], 1, 1.0),
            (vec![0.0, 0.0, 1.0, 0.0], 2, 1.0),
        ];
        let first = net.train_epoch(&data).unwrap();
        let mut last = first;
        for _ in 0..100 {
            last = net.train_epoch(&data).unwrap();
        }
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn weighted_training_approximates_conditional_distribution() {
        // One context, two outcomes with 80/20 empirical weights: the
        // softmax should converge near (0.8, 0.2).
        let mut net = Mlp::new(
            MlpConfig::new(vec![2, 6, 2])
                .with_seed(11)
                .with_learning_rate(0.2)
                .with_momentum(0.5),
        )
        .unwrap();
        let data = [(vec![1.0, 0.0], 0usize, 8.0), (vec![1.0, 0.0], 1, 2.0)];
        for _ in 0..3000 {
            net.train_epoch(&data).unwrap();
        }
        let p = net.forward(&[1.0, 0.0]).unwrap();
        assert!((p[0] - 0.8).abs() < 0.05, "p0 = {}", p[0]);
        assert!((p[1] - 0.2).abs() < 0.05, "p1 = {}", p[1]);
    }

    #[test]
    fn empty_epoch_is_noop() {
        let mut net = Mlp::new(MlpConfig::new(vec![2, 2]).with_seed(1)).unwrap();
        assert_eq!(net.train_epoch(&[]).unwrap(), 0.0);
        assert_eq!(net.train_epoch(&[(vec![0.0, 0.0], 0, 0.0)]).unwrap(), 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Mlp::new(MlpConfig::new(vec![3, 4, 2]).with_seed(42)).unwrap();
        let b = Mlp::new(MlpConfig::new(vec![3, 4, 2]).with_seed(42)).unwrap();
        assert_eq!(
            a.forward(&[0.3, 0.6, 0.9]).unwrap(),
            b.forward(&[0.3, 0.6, 0.9]).unwrap()
        );
    }

    #[test]
    fn one_hot_encoding() {
        let v = encode_context(&[1, 0, 2], 3);
        assert_eq!(v.len(), 9);
        assert_eq!(v[1], 1.0);
        assert_eq!(v[3], 1.0);
        assert_eq!(v[8], 1.0);
        assert_eq!(v.iter().sum::<f64>(), 3.0);
    }

    #[test]
    #[should_panic(expected = "out of one-hot width")]
    fn one_hot_rejects_bad_class() {
        let mut out = vec![0.0; 3];
        one_hot_into(&mut out, 0, 3, 3);
    }

    #[test]
    fn display_is_nonempty() {
        let net = Mlp::new(MlpConfig::new(vec![2, 2]).with_seed(1)).unwrap();
        assert!(!net.to_string().is_empty());
    }
}

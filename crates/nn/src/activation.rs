//! Activation functions.

/// Logistic sigmoid `1 / (1 + e^-x)`.
///
/// The paper's neural-network detector is a classic multilayer
/// feed-forward network (Debar et al. 1992; Zurada 1992); sigmoid hidden
/// units are the period-appropriate choice.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        // Numerically stable branch for large negative inputs.
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Derivative of the sigmoid expressed in terms of its output `y`.
#[inline]
pub fn sigmoid_prime_from_output(y: f64) -> f64 {
    y * (1.0 - y)
}

/// Numerically stable in-place softmax.
///
/// # Panics
///
/// Panics if `logits` is empty.
pub fn softmax_in_place(logits: &mut [f64]) {
    assert!(!logits.is_empty(), "softmax of an empty slice");
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for x in logits.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in logits.iter_mut() {
        *x /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_midpoint_and_limits() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(40.0) > 0.999_999);
        assert!(sigmoid(-40.0) < 1e-6);
        // Stability: no NaN at extremes.
        assert!(sigmoid(-1e4).is_finite());
        assert!(sigmoid(1e4).is_finite());
    }

    #[test]
    fn sigmoid_is_monotone() {
        let mut prev = sigmoid(-5.0);
        for i in -49..50 {
            let y = sigmoid(i as f64 / 10.0);
            assert!(y >= prev);
            prev = y;
        }
    }

    #[test]
    fn sigmoid_prime_peaks_at_half() {
        assert!((sigmoid_prime_from_output(0.5) - 0.25).abs() < 1e-12);
        assert_eq!(sigmoid_prime_from_output(0.0), 0.0);
        assert_eq!(sigmoid_prime_from_output(1.0), 0.0);
    }

    #[test]
    fn softmax_normalises_and_orders() {
        let mut v = vec![1.0, 2.0, 3.0];
        softmax_in_place(&mut v);
        let sum: f64 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(v[2] > v[1] && v[1] > v[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let mut a = vec![1.0, 2.0];
        let mut b = vec![1001.0, 1002.0];
        softmax_in_place(&mut a);
        softmax_in_place(&mut b);
        assert!((a[0] - b[0]).abs() < 1e-12);
        let mut huge = vec![1e9, -1e9];
        softmax_in_place(&mut huge);
        assert!(huge.iter().all(|x| x.is_finite()));
    }

    #[test]
    #[should_panic(expected = "softmax of an empty slice")]
    fn softmax_rejects_empty() {
        softmax_in_place(&mut []);
    }
}

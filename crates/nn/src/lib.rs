//! Feed-forward neural-network substrate for the `detdiv` workspace.
//!
//! The paper's fourth detector is "a Neural Network component for an
//! intrusion detection system" in the style of Debar, Becker & Siboni
//! (1992): a multilayer feed-forward network that learns to predict the
//! next categorical element from the current window, whose learning
//! algorithm "can be described as mimicking the effects of employing
//! probabilistic concepts such as ... conditional probabilities" (§5.2).
//!
//! This crate implements that substrate from scratch — no external ML
//! dependencies: [`Mlp`] (sigmoid hidden layers, softmax output,
//! cross-entropy loss, SGD with momentum), one-hot [`encode_context`]
//! helpers, and an [`MlpConfig`] exposing exactly the hyperparameters the
//! paper flags as the detector's operational caveat: the learning
//! constant, the number of hidden nodes and the momentum constant (§7).
//!
//! ```
//! use detdiv_nn::{encode_context, Mlp, MlpConfig};
//!
//! // Predict "next symbol" (3 classes) from a 2-symbol context.
//! let mut net = Mlp::new(MlpConfig::new(vec![6, 10, 3]).with_seed(1)).unwrap();
//! let examples = [
//!     (encode_context(&[0, 1], 3), 2usize, 5.0), // (0,1) -> 2, seen 5x
//!     (encode_context(&[1, 2], 3), 0, 5.0),      // (1,2) -> 0, seen 5x
//! ];
//! for _ in 0..300 {
//!     net.train_epoch(&examples).unwrap();
//! }
//! assert_eq!(net.predict_class(&encode_context(&[0, 1], 3)).unwrap(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::print_stdout, clippy::print_stderr)]

mod activation;
mod error;
mod mlp;

pub use activation::{sigmoid, sigmoid_prime_from_output, softmax_in_place};
pub use error::NnError;
pub use mlp::{encode_context, one_hot_into, Mlp, MlpConfig};

//! Error types for the neural-network substrate.

use std::error::Error;
use std::fmt;

/// Errors arising from network construction or training.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// Fewer than two layer sizes were supplied (input and output are
    /// mandatory).
    TooFewLayers {
        /// Number of layer sizes supplied.
        found: usize,
    },
    /// A layer was declared with zero units.
    EmptyLayer {
        /// Index of the offending layer.
        layer: usize,
    },
    /// An input vector's length did not match the input layer.
    InputSizeMismatch {
        /// Expected input width.
        expected: usize,
        /// Width found.
        found: usize,
    },
    /// A target class index was outside the output layer.
    TargetOutOfRange {
        /// The offending class index.
        target: usize,
        /// Number of output units.
        outputs: usize,
    },
    /// A hyperparameter was outside its valid range.
    InvalidHyperparameter {
        /// Name of the offending hyperparameter.
        name: &'static str,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::TooFewLayers { found } => {
                write!(f, "need at least input and output layers, found {found}")
            }
            NnError::EmptyLayer { layer } => write!(f, "layer {layer} has zero units"),
            NnError::InputSizeMismatch { expected, found } => {
                write!(
                    f,
                    "input of width {found} does not match input layer of width {expected}"
                )
            }
            NnError::TargetOutOfRange { target, outputs } => {
                write!(
                    f,
                    "target class {target} outside output layer of width {outputs}"
                )
            }
            NnError::InvalidHyperparameter { name } => {
                write!(f, "invalid hyperparameter: {name}")
            }
        }
    }
}

impl Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(NnError::TooFewLayers { found: 1 }
            .to_string()
            .contains("at least"));
        assert!(NnError::EmptyLayer { layer: 2 }
            .to_string()
            .contains("layer 2"));
        assert!(NnError::InvalidHyperparameter {
            name: "learning_rate"
        }
        .to_string()
        .contains("learning_rate"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<NnError>();
    }
}

//! Property tests for the HMM substrate.

use detdiv_hmm::{baum_welch, Hmm, InitStrategy, TrainConfig};
use detdiv_sequence::Symbol;
use proptest::prelude::*;

fn stream(max_sym: u32, min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<Symbol>> {
    prop::collection::vec((0..max_sym).prop_map(Symbol::new), min_len..=max_len)
}

proptest! {
    /// Random models are valid: filtering any in-range sequence yields a
    /// state distribution summing to 1 and a finite log-likelihood.
    #[test]
    fn filtering_random_models(
        states in 1usize..6,
        seed in 0u64..1000,
        obs in stream(4, 1, 60),
    ) {
        let hmm = Hmm::random(states, 4, seed);
        let f = hmm.filter(&obs).unwrap();
        let sum: f64 = f.state_dist.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(f.log_likelihood.is_finite());
        prop_assert!(f.log_likelihood <= 0.0);
    }

    /// The predictive distribution sums to one for any filtered state.
    #[test]
    fn predictive_normalises(seed in 0u64..1000, obs in stream(5, 0, 40)) {
        let hmm = Hmm::random(3, 5, seed);
        let f = hmm.filter(&obs).unwrap();
        let p = hmm.predictive(&f.state_dist, obs.is_empty());
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        // predict_next agrees with the predictive vector.
        for next in 0..5u32 {
            let q = hmm.predict_next(&obs, Symbol::new(next)).unwrap();
            prop_assert!((q - p[next as usize]).abs() < 1e-9);
        }
    }

    /// Chain rule: the sequence log-likelihood decomposes into the sum
    /// of log predictive probabilities.
    #[test]
    fn likelihood_decomposes_into_predictions(seed in 0u64..500, obs in stream(3, 1, 25)) {
        let hmm = Hmm::random(3, 3, seed);
        let ll = hmm.log_likelihood(&obs).unwrap();
        let mut acc = 0.0;
        for t in 0..obs.len() {
            let p = hmm.predict_next(&obs[..t], obs[t]).unwrap();
            acc += p.ln();
        }
        prop_assert!((ll - acc).abs() < 1e-6, "{ll} vs {acc}");
    }

    /// Baum–Welch never decreases the training log-likelihood
    /// (monotonicity of EM), regardless of data or seed.
    #[test]
    fn em_is_monotone(seed in 0u64..100, obs in stream(3, 10, 80)) {
        let short = baum_welch(
            &[&obs],
            &TrainConfig { states: 3, max_iters: 2, tol: 0.0, seed, init: InitStrategy::Random },
        )
        .unwrap();
        let long = baum_welch(
            &[&obs],
            &TrainConfig { states: 3, max_iters: 12, tol: 0.0, seed, init: InitStrategy::Random },
        )
        .unwrap();
        prop_assert!(long.1 >= short.1 - 1e-9, "{} -> {}", short.1, long.1);
    }

    /// A trained model assigns higher likelihood to its training data
    /// than a random model does (per observation).
    #[test]
    fn training_helps(seed in 0u64..100) {
        let mut obs = Vec::new();
        for _ in 0..40 {
            obs.extend([0u32, 1, 2].map(Symbol::new));
        }
        let random = Hmm::random(3, 3, seed);
        let (trained, _) = baum_welch(
            &[&obs],
            &TrainConfig { states: 3, max_iters: 25, tol: 1e-9, seed, init: InitStrategy::FirstOrder },
        )
        .unwrap();
        let lr = random.log_likelihood(&obs).unwrap();
        let lt = trained.log_likelihood(&obs).unwrap();
        prop_assert!(lt > lr, "trained {lt} vs random {lr}");
    }
}

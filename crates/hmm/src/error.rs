//! Error types for the HMM substrate.

use std::error::Error;
use std::fmt;

/// Errors arising from HMM construction or training.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HmmError {
    /// A model dimension was zero.
    EmptyDimension {
        /// Which dimension ("states" or "symbols").
        which: &'static str,
    },
    /// A probability vector did not sum to 1 (within tolerance) or held
    /// a negative entry.
    NotStochastic {
        /// Which table ("initial", "transition", "emission").
        table: &'static str,
        /// Row index within the table.
        row: usize,
        /// The row's actual sum.
        sum: f64,
    },
    /// An observation fell outside the model's symbol range.
    SymbolOutOfRange {
        /// The offending symbol identifier.
        symbol: u32,
        /// Number of symbols the model emits.
        symbols: usize,
    },
    /// A training set was empty or held an empty sequence.
    EmptyTraining,
}

impl fmt::Display for HmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HmmError::EmptyDimension { which } => {
                write!(f, "HMM needs at least one {which}")
            }
            HmmError::NotStochastic { table, row, sum } => {
                write!(f, "{table} row {row} sums to {sum}, expected 1")
            }
            HmmError::SymbolOutOfRange { symbol, symbols } => {
                write!(f, "symbol {symbol} outside the model's {symbols} symbols")
            }
            HmmError::EmptyTraining => {
                write!(f, "training requires at least one non-empty sequence")
            }
        }
    }
}

impl Error for HmmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(HmmError::EmptyDimension { which: "states" }
            .to_string()
            .contains("states"));
        assert!(HmmError::NotStochastic {
            table: "emission",
            row: 1,
            sum: 0.9
        }
        .to_string()
        .contains("emission"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<HmmError>();
    }
}

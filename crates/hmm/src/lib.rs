//! Hidden-Markov-model substrate for the `detdiv` workspace.
//!
//! Warrender, Forrest & Pearlmutter (1999) — the paper's reference \[20\],
//! source of both Stide and the 0.5 % rare-sequence definition — compared
//! four "data models" for system-call streams: stide, t-stide, RIPPER
//! and a **hidden Markov model**. This crate supplies that fourth model
//! as an extension baseline for the diversity study:
//!
//! * [`Hmm`] — a discrete-observation HMM with the scaled forward
//!   algorithm ([`Hmm::filter`], [`Hmm::log_likelihood`]) and one-step
//!   predictive queries ([`Hmm::predict_next`]);
//! * [`baum_welch`] — scaled forward–backward EM training over one or
//!   more observation sequences.
//!
//! ```
//! use detdiv_hmm::{baum_welch, TrainConfig};
//! use detdiv_sequence::{symbols, Symbol};
//!
//! let mut data = Vec::new();
//! for _ in 0..60 { data.extend(symbols(&[0, 1, 2])); }
//! let (hmm, _ll) = baum_welch(&[&data], &TrainConfig {
//!     states: 3,
//!     max_iters: 50,
//!     tol: 1e-6,
//!     seed: 1,
//!     init: detdiv_hmm::InitStrategy::FirstOrder,
//! }).unwrap();
//! let p = hmm.predict_next(&symbols(&[0, 1]), Symbol::new(2)).unwrap();
//! assert!(p > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::print_stdout, clippy::print_stderr)]

mod error;
mod model;
mod train;

pub use error::HmmError;
pub use model::{Filtered, Hmm};
pub use train::{baum_welch, InitStrategy, TrainConfig};

//! Baum–Welch estimation (scaled forward–backward EM).
//!
//! Warrender et al. trained their system-call HMMs with "roughly the
//! same number of states as there are unique system calls"; the trainer
//! here takes the state count as a parameter and defaults the detector
//! layer to that heuristic.

use detdiv_sequence::Symbol;

use crate::error::HmmError;
use crate::model::Hmm;

/// How the initial model handed to EM is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitStrategy {
    /// A jittered-uniform random model (the textbook default). EM from
    /// a random start can settle in poor local optima on
    /// near-deterministic data.
    Random,
    /// Moment-matching initialisation: one state per symbol, emissions
    /// near-identity, transitions from the empirical first-order
    /// (bigram) estimate. Requires `states >= symbols`; converges in a
    /// handful of iterations on cyclic data.
    FirstOrder,
}

/// Training configuration for [`baum_welch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of hidden states.
    pub states: usize,
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Stop when the total log-likelihood improves by less than this.
    pub tol: f64,
    /// Seed for the random initial model.
    pub seed: u64,
    /// Initial-model strategy.
    pub init: InitStrategy,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            states: 8,
            max_iters: 40,
            tol: 1e-4,
            seed: 1999, // Warrender et al.'s year
            init: InitStrategy::Random,
        }
    }
}

/// Builds the moment-matching initial model for [`InitStrategy::FirstOrder`].
fn first_order_init(sequences: &[&[Symbol]], states: usize, symbols: usize) -> Hmm {
    let n = states;
    // Empirical bigram and unigram counts with light smoothing.
    let smooth = 1e-3;
    let mut uni = vec![smooth; symbols];
    let mut bi = vec![smooth; symbols * symbols];
    for seq in sequences {
        for &s in seq.iter() {
            uni[s.index()] += 1.0;
        }
        for w in seq.windows(2) {
            bi[w[0].index() * symbols + w[1].index()] += 1.0;
        }
    }
    let uni_total: f64 = uni.iter().sum();

    // One state per symbol; surplus states start uniform.
    let mut pi = vec![0.0; n];
    let mut a = vec![0.0; n * n];
    let mut b = vec![0.0; n * symbols];
    for i in 0..n {
        if i < symbols {
            pi[i] = uni[i] / uni_total;
            // Emissions near-identity.
            let off = 0.02 / (symbols.max(2) - 1) as f64;
            for x in 0..symbols {
                b[i * symbols + x] = if x == i { 0.98 } else { off };
            }
            // Transitions from the bigram estimate over the symbol
            // states; surplus states get a small floor.
            let row_total: f64 = (0..symbols).map(|x| bi[i * symbols + x]).sum();
            let surplus = n - symbols;
            let floor = if surplus > 0 {
                0.01 / surplus as f64
            } else {
                0.0
            };
            let scale = if surplus > 0 { 0.99 } else { 1.0 };
            for j in 0..n {
                a[i * n + j] = if j < symbols {
                    scale * bi[i * symbols + j] / row_total
                } else {
                    floor
                };
            }
        } else {
            pi[i] = 0.0;
            for x in 0..symbols {
                b[i * symbols + x] = 1.0 / symbols as f64;
            }
            for j in 0..n {
                a[i * n + j] = 1.0 / n as f64;
            }
        }
    }
    // Renormalise pi in case of smoothing drift.
    let pi_total: f64 = pi.iter().sum();
    for p in pi.iter_mut() {
        *p /= pi_total;
    }
    let mut hmm = Hmm::random(n, symbols, 0);
    hmm.set_params(pi, a, b);
    hmm
}

/// Scaled forward pass over one sequence; returns per-step scaled alphas
/// and scale factors.
fn forward(hmm: &Hmm, obs: &[Symbol]) -> (Vec<Vec<f64>>, Vec<f64>) {
    let n = hmm.states();
    let t_len = obs.len();
    let mut alphas = Vec::with_capacity(t_len);
    let mut scales = Vec::with_capacity(t_len);
    let mut prev = vec![0.0; n];
    for (t, &o) in obs.iter().enumerate() {
        let sym = o.index();
        let mut alpha = vec![0.0; n];
        if t == 0 {
            for (i, a) in alpha.iter_mut().enumerate() {
                *a = hmm.pi(i) * hmm.b(i, sym);
            }
        } else {
            for (j, a) in alpha.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (i, &p) in prev.iter().enumerate() {
                    acc += p * hmm.a(i, j);
                }
                *a = acc * hmm.b(j, sym);
            }
        }
        let mut scale: f64 = alpha.iter().sum();
        if scale <= 0.0 {
            // Degenerate: renormalise to uniform to keep EM moving.
            for a in alpha.iter_mut() {
                *a = 1.0 / n as f64;
            }
            scale = f64::MIN_POSITIVE;
        } else {
            for a in alpha.iter_mut() {
                *a /= scale;
            }
        }
        prev.clone_from(&alpha);
        alphas.push(alpha);
        scales.push(scale);
    }
    (alphas, scales)
}

/// Scaled backward pass matching [`forward`]'s scale factors.
fn backward(hmm: &Hmm, obs: &[Symbol], scales: &[f64]) -> Vec<Vec<f64>> {
    let n = hmm.states();
    let t_len = obs.len();
    let mut betas = vec![vec![0.0; n]; t_len];
    for b in betas[t_len - 1].iter_mut() {
        *b = 1.0 / scales[t_len - 1];
    }
    for t in (0..t_len - 1).rev() {
        let sym_next = obs[t + 1].index();
        for i in 0..n {
            let mut acc = 0.0;
            for (j, &beta_next) in betas[t + 1].iter().enumerate() {
                acc += hmm.a(i, j) * hmm.b(j, sym_next) * beta_next;
            }
            betas[t][i] = acc / scales[t];
        }
    }
    betas
}

/// Fits an HMM to `sequences` by Baum–Welch, starting from a random
/// model.
///
/// Returns the fitted model and its final total log-likelihood.
///
/// # Errors
///
/// * [`HmmError::EmptyTraining`] if there is no non-empty sequence;
/// * [`HmmError::EmptyDimension`] if `config.states` is zero or the
///   sequences contain no symbols;
/// * [`HmmError::SymbolOutOfRange`] is impossible here — the symbol
///   range is inferred from the data.
pub fn baum_welch(sequences: &[&[Symbol]], config: &TrainConfig) -> Result<(Hmm, f64), HmmError> {
    let sequences: Vec<&[Symbol]> = sequences
        .iter()
        .copied()
        .filter(|s| !s.is_empty())
        .collect();
    if sequences.is_empty() {
        return Err(HmmError::EmptyTraining);
    }
    if config.states == 0 {
        return Err(HmmError::EmptyDimension { which: "states" });
    }
    let symbols = sequences
        .iter()
        .flat_map(|s| s.iter())
        .map(|s| s.index() + 1)
        .max()
        .expect("nonempty sequences");

    let n = config.states;
    if config.init == InitStrategy::FirstOrder && n < symbols {
        return Err(HmmError::EmptyDimension { which: "states" });
    }
    let mut hmm = match config.init {
        InitStrategy::Random => Hmm::random(n, symbols, config.seed),
        InitStrategy::FirstOrder => first_order_init(&sequences, n, symbols),
    };
    let mut last_ll = f64::NEG_INFINITY;

    for _ in 0..config.max_iters {
        // Accumulators.
        let mut pi_acc = vec![0.0; n];
        let mut a_num = vec![0.0; n * n];
        let mut a_den = vec![0.0; n];
        let mut b_num = vec![0.0; n * symbols];
        let mut b_den = vec![0.0; n];
        let mut total_ll = 0.0;

        for obs in &sequences {
            let (alphas, scales) = forward(&hmm, obs);
            let betas = backward(&hmm, obs, &scales);
            total_ll += scales.iter().map(|s| s.ln()).sum::<f64>();

            let t_len = obs.len();
            // Gammas.
            for t in 0..t_len {
                let sym = obs[t].index();
                let mut norm = 0.0;
                for i in 0..n {
                    norm += alphas[t][i] * betas[t][i];
                }
                if norm <= 0.0 {
                    continue;
                }
                for i in 0..n {
                    let gamma = alphas[t][i] * betas[t][i] / norm;
                    if t == 0 {
                        pi_acc[i] += gamma;
                    }
                    b_num[i * symbols + sym] += gamma;
                    b_den[i] += gamma;
                    if t + 1 < t_len {
                        a_den[i] += gamma;
                    }
                }
            }
            // Xis.
            for t in 0..t_len.saturating_sub(1) {
                let sym_next = obs[t + 1].index();
                let mut norm = 0.0;
                let mut xis = vec![0.0; n * n];
                for i in 0..n {
                    for j in 0..n {
                        let xi = alphas[t][i]
                            * hmm.a(i, j)
                            * hmm.b(j, sym_next)
                            * betas[t + 1][j]
                            * scales[t + 1];
                        xis[i * n + j] = xi;
                        norm += xi;
                    }
                }
                if norm <= 0.0 {
                    continue;
                }
                for (k, xi) in xis.iter().enumerate() {
                    a_num[k] += xi / norm;
                }
            }
        }

        // M-step with small-floor smoothing to keep rows stochastic.
        let smooth = 1e-12;
        let pi_sum: f64 = pi_acc.iter().sum::<f64>() + smooth * n as f64;
        let pi: Vec<f64> = pi_acc.iter().map(|&x| (x + smooth) / pi_sum).collect();
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            let den = a_den[i] + smooth * n as f64;
            for j in 0..n {
                a[i * n + j] = (a_num[i * n + j] + smooth) / den;
            }
        }
        let mut b = vec![0.0; n * symbols];
        for i in 0..n {
            let den = b_den[i] + smooth * symbols as f64;
            for x in 0..symbols {
                b[i * symbols + x] = (b_num[i * symbols + x] + smooth) / den;
            }
        }
        hmm.set_params(pi, a, b);

        if (total_ll - last_ll).abs() < config.tol {
            last_ll = total_ll;
            break;
        }
        last_ll = total_ll;
    }
    Ok((hmm, last_ll))
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_sequence::symbols;

    fn cycle_data(reps: usize) -> Vec<Symbol> {
        let mut v = Vec::new();
        for _ in 0..reps {
            v.extend(symbols(&[0, 1, 2, 3]));
        }
        v
    }

    #[test]
    fn learns_a_deterministic_cycle() {
        let data = cycle_data(100);
        let (hmm, ll) = baum_welch(
            &[&data],
            &TrainConfig {
                states: 4,
                max_iters: 60,
                tol: 1e-6,
                seed: 7,
                init: InitStrategy::Random,
            },
        )
        .unwrap();
        assert!(ll.is_finite());
        // Prediction of the learnt model: after (0,1,2) comes 3 with
        // high probability, and 1 with low probability.
        let p_next = hmm
            .predict_next(&symbols(&[0, 1, 2]), Symbol::new(3))
            .unwrap();
        let p_wrong = hmm
            .predict_next(&symbols(&[0, 1, 2]), Symbol::new(1))
            .unwrap();
        assert!(p_next > 0.9, "p(3 | 0,1,2) = {p_next}");
        assert!(p_wrong < 0.1, "p(1 | 0,1,2) = {p_wrong}");
    }

    #[test]
    fn likelihood_increases_with_training() {
        let data = cycle_data(50);
        let short = baum_welch(
            &[&data],
            &TrainConfig {
                states: 4,
                max_iters: 1,
                tol: 0.0,
                seed: 3,
                init: InitStrategy::Random,
            },
        )
        .unwrap();
        let long = baum_welch(
            &[&data],
            &TrainConfig {
                states: 4,
                max_iters: 30,
                tol: 0.0,
                seed: 3,
                init: InitStrategy::Random,
            },
        )
        .unwrap();
        assert!(
            long.1 >= short.1,
            "EM must not decrease likelihood: {} -> {}",
            short.1,
            long.1
        );
    }

    #[test]
    fn multiple_sequences_are_pooled() {
        let a = cycle_data(20);
        let b = cycle_data(30);
        let (hmm, _) = baum_welch(&[&a, &b], &TrainConfig::default()).unwrap();
        let p = hmm.predict_next(&symbols(&[0, 1]), Symbol::new(2)).unwrap();
        assert!(p > 0.5, "p(2 | 0,1) = {p}");
    }

    #[test]
    fn rejects_empty_training() {
        assert!(matches!(
            baum_welch(&[], &TrainConfig::default()),
            Err(HmmError::EmptyTraining)
        ));
        let empty: &[Symbol] = &[];
        assert!(matches!(
            baum_welch(&[empty], &TrainConfig::default()),
            Err(HmmError::EmptyTraining)
        ));
    }

    #[test]
    fn rejects_zero_states() {
        let data = cycle_data(5);
        assert!(matches!(
            baum_welch(
                &[&data],
                &TrainConfig {
                    states: 0,
                    ..TrainConfig::default()
                }
            ),
            Err(HmmError::EmptyDimension { .. })
        ));
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let data = cycle_data(25);
        let cfg = TrainConfig {
            states: 3,
            max_iters: 10,
            tol: 0.0,
            seed: 42,
            init: InitStrategy::Random,
        };
        let (a, la) = baum_welch(&[&data], &cfg).unwrap();
        let (b, lb) = baum_welch(&[&data], &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(la, lb);
    }

    #[test]
    fn first_order_init_learns_short_contexts() {
        let data = cycle_data(150);
        let (hmm, _) = baum_welch(
            &[&data],
            &TrainConfig {
                states: 4,
                max_iters: 20,
                tol: 1e-6,
                seed: 0,
                init: InitStrategy::FirstOrder,
            },
        )
        .unwrap();
        // Even a single-element context pins the state precisely.
        let p = hmm.predict_next(&symbols(&[0]), Symbol::new(1)).unwrap();
        assert!(p > 0.9, "p(1 | 0) = {p}");
        let q = hmm.predict_next(&symbols(&[0]), Symbol::new(3)).unwrap();
        assert!(q < 0.1, "p(3 | 0) = {q}");
    }

    #[test]
    fn first_order_init_requires_enough_states() {
        let data = cycle_data(10);
        assert!(matches!(
            baum_welch(
                &[&data],
                &TrainConfig {
                    states: 2,
                    max_iters: 5,
                    tol: 0.0,
                    seed: 0,
                    init: InitStrategy::FirstOrder,
                }
            ),
            Err(HmmError::EmptyDimension { .. })
        ));
    }

    #[test]
    fn surplus_states_are_tolerated() {
        let data = cycle_data(60);
        let (hmm, ll) = baum_welch(
            &[&data],
            &TrainConfig {
                states: 6, // 2 surplus over the 4 symbols
                max_iters: 15,
                tol: 1e-6,
                seed: 0,
                init: InitStrategy::FirstOrder,
            },
        )
        .unwrap();
        assert!(ll.is_finite());
        let p = hmm.predict_next(&symbols(&[1]), Symbol::new(2)).unwrap();
        assert!(p > 0.8, "p(2 | 1) = {p}");
    }
}

//! Discrete-observation hidden Markov models.
//!
//! Warrender, Forrest & Pearlmutter (1999) — the paper's reference [20]
//! and the source of both Stide and the rare-sequence definition — also
//! evaluated a hidden Markov model as a fourth "data model" for
//! system-call streams. This substrate provides that model: a discrete
//! HMM with the scaled forward algorithm for filtering/likelihood and
//! (in [`crate::train`]) Baum–Welch estimation.

use detdiv_sequence::Symbol;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::HmmError;

const ROW_SUM_TOLERANCE: f64 = 1e-9;

fn check_row(table: &'static str, row_idx: usize, row: &[f64]) -> Result<(), HmmError> {
    let sum: f64 = row.iter().sum();
    if row.iter().any(|&p| p < 0.0) || (sum - 1.0).abs() > ROW_SUM_TOLERANCE {
        return Err(HmmError::NotStochastic {
            table,
            row: row_idx,
            sum,
        });
    }
    Ok(())
}

/// A discrete hidden Markov model with `n` hidden states and `m`
/// observation symbols.
///
/// # Examples
///
/// ```
/// use detdiv_hmm::Hmm;
/// use detdiv_sequence::symbols;
///
/// // A 2-state model that deterministically alternates states and
/// // emits the state's index.
/// let hmm = Hmm::from_parts(
///     vec![1.0, 0.0],
///     vec![vec![0.0, 1.0], vec![1.0, 0.0]],
///     vec![vec![1.0, 0.0], vec![0.0, 1.0]],
/// )
/// .unwrap();
/// let ll = hmm.log_likelihood(&symbols(&[0, 1, 0, 1])).unwrap();
/// assert!(ll.abs() < 1e-9); // probability 1
/// let impossible = hmm.log_likelihood(&symbols(&[0, 0])).unwrap();
/// assert_eq!(impossible, f64::NEG_INFINITY);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hmm {
    states: usize,
    symbols: usize,
    /// Initial state distribution, length `states`.
    pi: Vec<f64>,
    /// Transition matrix, row-major `states x states`.
    a: Vec<f64>,
    /// Emission matrix, row-major `states x symbols`.
    b: Vec<f64>,
}

/// The result of filtering a prefix: the scaled forward state
/// distribution and the accumulated log-likelihood.
#[derive(Debug, Clone, PartialEq)]
pub struct Filtered {
    /// `P(state | observations so far)`, length `states`; sums to 1
    /// unless the prefix was impossible.
    pub state_dist: Vec<f64>,
    /// Log-likelihood of the prefix (`-inf` if impossible).
    pub log_likelihood: f64,
}

impl Hmm {
    /// Builds a model from explicit parameter tables.
    ///
    /// # Errors
    ///
    /// * [`HmmError::EmptyDimension`] on zero states/symbols;
    /// * [`HmmError::NotStochastic`] if `pi` or any row of `a`/`b` is
    ///   not a probability distribution.
    pub fn from_parts(pi: Vec<f64>, a: Vec<Vec<f64>>, b: Vec<Vec<f64>>) -> Result<Self, HmmError> {
        let states = pi.len();
        if states == 0 {
            return Err(HmmError::EmptyDimension { which: "states" });
        }
        let symbols = b.first().map(Vec::len).unwrap_or(0);
        if symbols == 0 || b.len() != states || a.len() != states {
            return Err(HmmError::EmptyDimension { which: "symbols" });
        }
        check_row("initial", 0, &pi)?;
        let mut flat_a = Vec::with_capacity(states * states);
        for (i, row) in a.iter().enumerate() {
            if row.len() != states {
                return Err(HmmError::EmptyDimension { which: "states" });
            }
            check_row("transition", i, row)?;
            flat_a.extend_from_slice(row);
        }
        let mut flat_b = Vec::with_capacity(states * symbols);
        for (i, row) in b.iter().enumerate() {
            if row.len() != symbols {
                return Err(HmmError::EmptyDimension { which: "symbols" });
            }
            check_row("emission", i, row)?;
            flat_b.extend_from_slice(row);
        }
        Ok(Hmm {
            states,
            symbols,
            pi,
            a: flat_a,
            b: flat_b,
        })
    }

    /// A randomly initialised model (rows drawn from a jittered uniform,
    /// then normalised) — the standard Baum–Welch starting point.
    ///
    /// # Panics
    ///
    /// Panics if `states` or `symbols` is zero.
    pub fn random(states: usize, symbols: usize, seed: u64) -> Self {
        assert!(states > 0 && symbols > 0, "dimensions must be positive");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut draw_row = |len: usize| -> Vec<f64> {
            let raw: Vec<f64> = (0..len).map(|_| 1.0 + rng.gen::<f64>() * 0.5).collect();
            let sum: f64 = raw.iter().sum();
            raw.into_iter().map(|x| x / sum).collect()
        };
        let pi = draw_row(states);
        let mut a = Vec::with_capacity(states * states);
        for _ in 0..states {
            a.extend(draw_row(states));
        }
        let mut b = Vec::with_capacity(states * symbols);
        for _ in 0..states {
            b.extend(draw_row(symbols));
        }
        Hmm {
            states,
            symbols,
            pi,
            a,
            b,
        }
    }

    /// Number of hidden states.
    #[inline]
    pub const fn states(&self) -> usize {
        self.states
    }

    /// Number of observation symbols.
    #[inline]
    pub const fn symbols(&self) -> usize {
        self.symbols
    }

    #[inline]
    pub(crate) fn a(&self, from: usize, to: usize) -> f64 {
        self.a[from * self.states + to]
    }

    #[inline]
    pub(crate) fn b(&self, state: usize, symbol: usize) -> f64 {
        self.b[state * self.symbols + symbol]
    }

    #[inline]
    pub(crate) fn pi(&self, state: usize) -> f64 {
        self.pi[state]
    }

    pub(crate) fn set_params(&mut self, pi: Vec<f64>, a: Vec<f64>, b: Vec<f64>) {
        self.pi = pi;
        self.a = a;
        self.b = b;
    }

    fn check_observations(&self, obs: &[Symbol]) -> Result<(), HmmError> {
        for &s in obs {
            if s.index() >= self.symbols {
                return Err(HmmError::SymbolOutOfRange {
                    symbol: s.id(),
                    symbols: self.symbols,
                });
            }
        }
        Ok(())
    }

    /// Filters an observation prefix: scaled forward recursion.
    ///
    /// Returns the posterior state distribution after consuming `obs`
    /// and the accumulated log-likelihood. An empty prefix yields the
    /// initial distribution with log-likelihood 0. An impossible prefix
    /// yields a uniform state distribution with `-inf` likelihood.
    ///
    /// # Errors
    ///
    /// Returns [`HmmError::SymbolOutOfRange`] if any observation is
    /// outside the model's symbol range.
    pub fn filter(&self, obs: &[Symbol]) -> Result<Filtered, HmmError> {
        self.check_observations(obs)?;
        let n = self.states;
        let mut dist = self.pi.clone();
        let mut log_likelihood = 0.0f64;
        let mut next = vec![0.0; n];
        for (t, &o) in obs.iter().enumerate() {
            let sym = o.index();
            if t == 0 {
                for (i, x) in next.iter_mut().enumerate() {
                    *x = dist[i] * self.b(i, sym);
                }
            } else {
                for (j, x) in next.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for (i, &d) in dist.iter().enumerate() {
                        acc += d * self.a(i, j);
                    }
                    *x = acc * self.b(j, sym);
                }
            }
            let scale: f64 = next.iter().sum();
            if scale <= 0.0 {
                return Ok(Filtered {
                    state_dist: vec![1.0 / n as f64; n],
                    log_likelihood: f64::NEG_INFINITY,
                });
            }
            for x in next.iter_mut() {
                *x /= scale;
            }
            log_likelihood += scale.ln();
            std::mem::swap(&mut dist, &mut next);
        }
        Ok(Filtered {
            state_dist: dist,
            log_likelihood,
        })
    }

    /// Log-likelihood of a complete observation sequence.
    ///
    /// # Errors
    ///
    /// Returns [`HmmError::SymbolOutOfRange`] on out-of-range
    /// observations.
    pub fn log_likelihood(&self, obs: &[Symbol]) -> Result<f64, HmmError> {
        Ok(self.filter(obs)?.log_likelihood)
    }

    /// The one-step predictive distribution over the next symbol, given
    /// a filtered state distribution.
    ///
    /// `P(x | dist) = Σ_j (Σ_i dist_i A_ij) B_j(x)`; with an empty
    /// history pass the initial distribution and `fresh = true` to skip
    /// the transition step, matching [`Hmm::filter`]'s timing.
    pub fn predictive(&self, state_dist: &[f64], fresh: bool) -> Vec<f64> {
        let n = self.states;
        debug_assert_eq!(state_dist.len(), n);
        let mut after: Vec<f64> = if fresh {
            state_dist.to_vec()
        } else {
            let mut after = vec![0.0; n];
            for (j, x) in after.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (i, &d) in state_dist.iter().enumerate() {
                    acc += d * self.a(i, j);
                }
                *x = acc;
            }
            after
        };
        // Normalise defensively (filter output sums to 1 already).
        let total: f64 = after.iter().sum();
        if total > 0.0 {
            for x in after.iter_mut() {
                *x /= total;
            }
        }
        let mut out = vec![0.0; self.symbols];
        for (x, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, &aj) in after.iter().enumerate() {
                acc += aj * self.b(j, x);
            }
            *o = acc;
        }
        out
    }

    /// Predictive probability of `next` after consuming `context`.
    ///
    /// # Errors
    ///
    /// Returns [`HmmError::SymbolOutOfRange`] if any symbol is outside
    /// the model's range.
    pub fn predict_next(&self, context: &[Symbol], next: Symbol) -> Result<f64, HmmError> {
        if next.index() >= self.symbols {
            return Err(HmmError::SymbolOutOfRange {
                symbol: next.id(),
                symbols: self.symbols,
            });
        }
        let filtered = self.filter(context)?;
        if filtered.log_likelihood == f64::NEG_INFINITY {
            // Impossible context: any continuation is maximally
            // surprising.
            return Ok(0.0);
        }
        let predictive = self.predictive(&filtered.state_dist, context.is_empty());
        Ok(predictive[next.index()])
    }
}

impl std::fmt::Display for Hmm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "hmm(states={}, symbols={})", self.states, self.symbols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_sequence::symbols;

    fn cycle_hmm() -> Hmm {
        // 3 states in a deterministic cycle, each emitting its index.
        Hmm::from_parts(
            vec![1.0, 0.0, 0.0],
            vec![
                vec![0.0, 1.0, 0.0],
                vec![0.0, 0.0, 1.0],
                vec![1.0, 0.0, 0.0],
            ],
            vec![
                vec![1.0, 0.0, 0.0],
                vec![0.0, 1.0, 0.0],
                vec![0.0, 0.0, 1.0],
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            Hmm::from_parts(vec![], vec![], vec![]),
            Err(HmmError::EmptyDimension { .. })
        ));
        assert!(matches!(
            Hmm::from_parts(vec![0.5, 0.4], vec![vec![1.0, 0.0]; 2], vec![vec![1.0]; 2]),
            Err(HmmError::NotStochastic {
                table: "initial",
                ..
            })
        ));
        assert!(matches!(
            Hmm::from_parts(vec![1.0], vec![vec![0.8]], vec![vec![1.0]]),
            Err(HmmError::NotStochastic {
                table: "transition",
                ..
            })
        ));
    }

    #[test]
    fn deterministic_cycle_likelihoods() {
        let hmm = cycle_hmm();
        assert!(
            hmm.log_likelihood(&symbols(&[0, 1, 2, 0, 1]))
                .unwrap()
                .abs()
                < 1e-9
        );
        assert_eq!(
            hmm.log_likelihood(&symbols(&[0, 2])).unwrap(),
            f64::NEG_INFINITY
        );
        assert_eq!(
            hmm.log_likelihood(&symbols(&[1])).unwrap(),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn filter_tracks_state() {
        let hmm = cycle_hmm();
        let f = hmm.filter(&symbols(&[0, 1])).unwrap();
        assert!((f.state_dist[1] - 1.0).abs() < 1e-12);
        // Empty prefix: the initial distribution.
        let f0 = hmm.filter(&[]).unwrap();
        assert_eq!(f0.state_dist, vec![1.0, 0.0, 0.0]);
        assert_eq!(f0.log_likelihood, 0.0);
    }

    #[test]
    fn predictive_follows_dynamics() {
        let hmm = cycle_hmm();
        // After observing (0, 1), the next symbol is certainly 2.
        assert!((hmm.predict_next(&symbols(&[0, 1]), Symbol::new(2)).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(
            hmm.predict_next(&symbols(&[0, 1]), Symbol::new(0)).unwrap(),
            0.0
        );
        // With no history, the first symbol is certainly 0.
        assert!((hmm.predict_next(&[], Symbol::new(0)).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn impossible_context_predicts_zero() {
        let hmm = cycle_hmm();
        assert_eq!(
            hmm.predict_next(&symbols(&[0, 0]), Symbol::new(1)).unwrap(),
            0.0
        );
    }

    #[test]
    fn out_of_range_symbols_rejected() {
        let hmm = cycle_hmm();
        assert!(matches!(
            hmm.log_likelihood(&symbols(&[0, 9])),
            Err(HmmError::SymbolOutOfRange { symbol: 9, .. })
        ));
        assert!(matches!(
            hmm.predict_next(&symbols(&[0]), Symbol::new(9)),
            Err(HmmError::SymbolOutOfRange { .. })
        ));
    }

    #[test]
    fn random_model_rows_are_stochastic() {
        let hmm = Hmm::random(4, 6, 11);
        let pi_sum: f64 = (0..4).map(|i| hmm.pi(i)).sum();
        assert!((pi_sum - 1.0).abs() < 1e-9);
        for i in 0..4 {
            let a_sum: f64 = (0..4).map(|j| hmm.a(i, j)).sum();
            let b_sum: f64 = (0..6).map(|x| hmm.b(i, x)).sum();
            assert!((a_sum - 1.0).abs() < 1e-9);
            assert!((b_sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        assert_eq!(Hmm::random(3, 3, 5), Hmm::random(3, 3, 5));
        assert_ne!(Hmm::random(3, 3, 5), Hmm::random(3, 3, 6));
    }

    #[test]
    fn predictive_distribution_normalises() {
        let hmm = Hmm::random(4, 5, 3);
        let f = hmm.filter(&symbols(&[0, 1, 2])).unwrap();
        let p = hmm.predictive(&f.state_dist, false);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(cycle_hmm().to_string(), "hmm(states=3, symbols=3)");
    }
}

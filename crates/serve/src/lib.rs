//! `detdiv-serve`: a sharded multi-stream ingest service at
//! millions-of-streams scale.
//!
//! The streaming layer (`detdiv-stream`) answers *how one process
//! scores interleaved streams*; this crate answers *how a daemon
//! serves millions of them* without giving up the workspace's
//! determinism contract:
//!
//! * **Sharding** — streams are assigned to one of N shards by their
//!   FNV-1a hash ([`detdiv_stream::hash_stream_id`]); each shard owns a
//!   [`detdiv_stream::StreamEngine`] and is only ever drained by one
//!   worker at a time, so per-stream verdict order is independent of
//!   the worker count.
//! * **Bounded queues, typed backpressure** — every shard queue has a
//!   hard capacity; a full queue rejects with [`RejectReason`], never
//!   buffers unboundedly. Load shedding is the caller's explicit
//!   decision, not an OOM kill's.
//! * **Two-tier detection** — under [`Tiering::Gated`], a cheap
//!   always-on EWMA band fronts the expensive detector banks; only
//!   streams that escalate past the gate get (and keep) tier-2 state.
//!   [`Tiering::Full`] feeds banks directly and is byte-equivalent to
//!   the bare engine — the differential suite pins this down.
//! * **Supervised execution** — a panicking detector degrades exactly
//!   one slot of one stream ([`detdiv_stream::StreamEngine`]'s
//!   isolation, surfaced through `detdiv_flight::streams`); a
//!   shard-level fault defers that shard's batch via
//!   [`detdiv_resil::supervised`] at the `serve/drain` site. Neither
//!   takes down the service.
//! * **Crash-safe snapshots** — periodic shard-state snapshots in the
//!   [`detdiv_resil`] journal wire format, written atomically;
//!   recovery resumes verdicts bit-identically (including queued but
//!   undrained events, captured as residue lines) and discards (never
//!   trips over) torn or corrupt snapshots.
//! * **Overload protection** — services built with
//!   [`IngestService::with_guard`] attach the `detdiv-guard`
//!   degradation ladder, tier-2 circuit breaker, cold-stream
//!   hibernation, and stuck-shard watchdog to every shard: under
//!   pressure the service defers escalations, falls back to gate
//!   verdicts, spills idle streams to disk, and finally sheds load
//!   with a typed [`RejectReason::Shedding`] — each step deterministic,
//!   audited through `detdiv-flight`, and reversed as pressure drains.
//!
//! Live counters are exported through [`introspect`] (scope's
//! `/servez` endpoint) and plain [`detdiv_obs`] counters
//! (`serve/rejected`, `serve/processed`, …).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::print_stdout, clippy::print_stderr)]

mod config;
mod guard;
pub mod introspect;
mod service;
mod snapshot;

pub use config::{ServeConfig, Tier1Config, Tiering};
pub use guard::{
    REASON_BREAKER_FALLBACK, REASON_ESCALATION_DEFERRED, REASON_ESCALATION_DEFERRED_BREAKER,
    REASON_TIER1_ONLY,
};
pub use service::{
    DrainSummary, IngestService, NullSink, RejectReason, Tier, VerdictEvent, VerdictSink,
};
pub use snapshot::{RecoverOutcome, SnapshotStats};

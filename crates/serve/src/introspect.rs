//! Live counters for a running [`crate::IngestService`], exposed to
//! `detdiv-scope`'s `/servez` endpoint through a process-global
//! registry.
//!
//! The service updates plain atomics (no locks on the hot path); the
//! registry holds at most one registered service — the daemon case —
//! and renders a JSON snapshot on demand. Tests construct services
//! without registering, so parallel test binaries never fight over the
//! global slot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Per-shard counters, all monotonic except `depth` and `streams`
/// (point-in-time gauges).
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Current queue depth (set after each enqueue/drain).
    pub depth: AtomicU64,
    /// Distinct streams resident on the shard.
    pub streams: AtomicU64,
    /// Events accepted into the queue.
    pub enqueued: AtomicU64,
    /// Events rejected by backpressure.
    pub rejected: AtomicU64,
    /// Events drained through detection.
    pub processed: AtomicU64,
    /// Verdicts emitted (tier 1 + tier 2).
    pub emitted: AtomicU64,
    /// Streams escalated from the tier-1 gate to a full bank.
    pub escalated: AtomicU64,
    /// Detector slots permanently degraded by a caught panic.
    pub degraded: AtomicU64,
    /// Drain batches deferred by shard-level supervision (the whole
    /// batch stays queued and is retried on the next drain).
    pub deferred: AtomicU64,
}

/// Counters for one service: a fixed vector of shard stats plus
/// service-level totals.
#[derive(Debug)]
pub struct ServiceStats {
    /// One entry per shard, index = shard id.
    pub shards: Vec<ShardStats>,
    /// Snapshots written.
    pub snapshots: AtomicU64,
    /// Streams rebuilt by recovery.
    pub recovered_streams: AtomicU64,
}

impl ServiceStats {
    /// Stats for an `n`-shard service, all zero.
    pub fn new(n: usize) -> ServiceStats {
        ServiceStats {
            shards: (0..n).map(|_| ShardStats::default()).collect(),
            snapshots: AtomicU64::new(0),
            recovered_streams: AtomicU64::new(0),
        }
    }

    fn sum(&self, field: impl Fn(&ShardStats) -> &AtomicU64) -> u64 {
        self.shards
            .iter()
            .map(|s| field(s).load(Ordering::Relaxed))
            .sum()
    }

    /// Renders the stats as one JSON object (stable key order).
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(256 + 64 * self.shards.len());
        out.push_str("{\"registered\":true");
        out.push_str(&format!(",\"shards\":{}", self.shards.len()));
        out.push_str(&format!(
            ",\"totals\":{{\"depth\":{},\"streams\":{},\"enqueued\":{},\"rejected\":{},\"processed\":{},\"emitted\":{},\"escalated\":{},\"degraded\":{},\"deferred\":{}}}",
            self.sum(|s| &s.depth),
            self.sum(|s| &s.streams),
            self.sum(|s| &s.enqueued),
            self.sum(|s| &s.rejected),
            self.sum(|s| &s.processed),
            self.sum(|s| &s.emitted),
            self.sum(|s| &s.escalated),
            self.sum(|s| &s.degraded),
            self.sum(|s| &s.deferred),
        ));
        out.push_str(&format!(
            ",\"snapshots\":{},\"recovered_streams\":{}",
            self.snapshots.load(Ordering::Relaxed),
            self.recovered_streams.load(Ordering::Relaxed)
        ));
        out.push_str(",\"per_shard\":[");
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"shard\":{i},\"depth\":{},\"streams\":{},\"enqueued\":{},\"rejected\":{},\"processed\":{},\"emitted\":{},\"escalated\":{},\"degraded\":{},\"deferred\":{}}}",
                s.depth.load(Ordering::Relaxed),
                s.streams.load(Ordering::Relaxed),
                s.enqueued.load(Ordering::Relaxed),
                s.rejected.load(Ordering::Relaxed),
                s.processed.load(Ordering::Relaxed),
                s.emitted.load(Ordering::Relaxed),
                s.escalated.load(Ordering::Relaxed),
                s.degraded.load(Ordering::Relaxed),
                s.deferred.load(Ordering::Relaxed),
            ));
        }
        out.push_str("]}");
        out
    }
}

fn slot() -> &'static Mutex<Option<Arc<ServiceStats>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<ServiceStats>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Registers `stats` as the process's introspectable service,
/// replacing any previous registration.
pub fn register(stats: Arc<ServiceStats>) {
    *slot().lock().unwrap_or_else(PoisonError::into_inner) = Some(stats);
}

/// Clears the registration if `stats` is still the registered service
/// (a later registration wins and is left in place).
pub fn deregister(stats: &Arc<ServiceStats>) {
    let mut guard = slot().lock().unwrap_or_else(PoisonError::into_inner);
    if guard.as_ref().is_some_and(|s| Arc::ptr_eq(s, stats)) {
        *guard = None;
    }
}

/// JSON snapshot of the registered service, or
/// `{"registered":false}` when no service has registered.
pub fn render_json() -> String {
    match slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .as_ref()
    {
        Some(stats) => stats.render_json(),
        None => "{\"registered\":false}".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_registers_renders_and_deregisters() {
        let stats = Arc::new(ServiceStats::new(2));
        stats.shards[0].enqueued.store(3, Ordering::Relaxed);
        stats.shards[1].enqueued.store(4, Ordering::Relaxed);
        stats.shards[1].rejected.store(1, Ordering::Relaxed);
        register(Arc::clone(&stats));
        let json = render_json();
        assert!(json.contains("\"registered\":true"), "{json}");
        assert!(json.contains("\"enqueued\":7"), "totals summed: {json}");
        assert!(json.contains("\"rejected\":1"), "{json}");
        assert!(json.contains("\"shard\":1"), "{json}");

        // A newer registration wins; deregistering the old handle is a
        // no-op, deregistering the new one clears the slot.
        let newer = Arc::new(ServiceStats::new(1));
        register(Arc::clone(&newer));
        deregister(&stats);
        assert!(render_json().contains("\"shards\":1"));
        deregister(&newer);
        assert_eq!(render_json(), "{\"registered\":false}");
    }
}

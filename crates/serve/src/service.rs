//! The sharded ingest service.
//!
//! [`IngestService`] owns N shards, each a bounded ingestion queue plus
//! an embedded [`StreamEngine`]. Producers call
//! [`enqueue`](IngestService::enqueue) (cheap: one lock, one push, or a
//! typed rejection); a drain cycle fans the shards out across the
//! [`detdiv_par`] pool, each worker draining whole shards so any one
//! stream's events are always processed in order by a single thread.
//!
//! Determinism: shard assignment is `hash % shards`, drains process
//! each shard FIFO, and the pool writes results to pre-indexed slots —
//! so per-stream verdict sequences are identical at every worker
//! count. Wall-clock latency is the only thing that varies.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use detdiv_resil::RetryPolicy;
use detdiv_stream::{
    DetectionResult, Ewma, SignalContext, SlotResult, StreamDetector, StreamEngine,
};

use crate::config::{ServeConfig, Tier1Config, Tiering};
use crate::introspect::ServiceStats;

/// Why an event was not accepted. Rejection is the *only* backpressure
/// mechanism: the service never buffers beyond the configured bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The stream's shard queue is at capacity; retry after a drain.
    QueueFull {
        /// The full shard.
        shard: usize,
        /// Its configured bound (current depth equals it).
        capacity: usize,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { shard, capacity } => {
                write!(f, "shard {shard} queue full (capacity {capacity})")
            }
        }
    }
}

/// Which tier produced a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The cheap always-on tier-1 gate.
    Gate,
    /// A full tier-2 detector bank.
    Model,
}

/// One verdict delivered to a [`VerdictSink`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerdictEvent {
    /// Shard that processed the event.
    pub shard: usize,
    /// Pre-hashed stream id.
    pub stream_hash: u64,
    /// The event's per-stream sequence number.
    pub seq: u64,
    /// Emitting tier.
    pub tier: Tier,
    /// Detector slot within the tier (always 0 for the gate).
    pub slot: usize,
    /// The verdict itself.
    pub result: DetectionResult,
    /// Enqueue→verdict latency. Wall-clock: the only
    /// scheduling-dependent field, so deterministic sinks must ignore
    /// it.
    pub latency: Duration,
}

/// Receives verdicts during a drain. Called from pool workers, hence
/// `&self` + `Sync`; events for one stream always arrive in order from
/// a single worker at a time.
pub trait VerdictSink: Sync {
    /// One verdict. Keep it cheap — this is the drain hot path.
    fn on_verdict(&self, event: &VerdictEvent);
}

/// A sink that drops everything (throughput measurement, warm-ups).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl VerdictSink for NullSink {
    fn on_verdict(&self, _event: &VerdictEvent) {}
}

/// What one [`IngestService::drain`] cycle did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainSummary {
    /// Events processed through detection.
    pub processed: u64,
    /// Verdicts emitted to the sink.
    pub emitted: u64,
    /// Streams escalated from tier 1 to tier 2 this cycle.
    pub escalated: u64,
    /// Detector slots newly degraded by caught panics.
    pub degraded: u64,
    /// Shards whose batch was deferred by shard-level supervision
    /// (their events remain queued for the next drain).
    pub deferred_shards: u64,
}

/// Shared bank factory: every shard's engine builds per-stream banks
/// from the same recipe.
type SharedFactory = Arc<dyn Fn() -> Vec<Box<dyn StreamDetector>> + Send + Sync>;
type BankFactory = Box<dyn FnMut() -> Vec<Box<dyn StreamDetector>> + Send>;

/// Tier-1 gate state for one stream (gated tiering only).
pub(crate) struct Tier1 {
    pub(crate) gate: Ewma,
    pub(crate) escalated: bool,
}

pub(crate) struct Shard {
    pub(crate) queue: VecDeque<(SignalContext, Instant)>,
    pub(crate) engine: StreamEngine<BankFactory>,
    /// Keyed by stream hash; present for every stream the shard has
    /// seen when tiering is gated, empty under full tiering.
    pub(crate) tier1: std::collections::HashMap<u64, Tier1>,
}

/// The sharded multi-stream ingest service.
///
/// # Examples
///
/// ```
/// use detdiv_serve::{IngestService, NullSink, ServeConfig};
/// use detdiv_stream::{hash_stream_id, Ewma, SignalContext, StreamDetector};
/// use detdiv_sequence::Symbol;
///
/// let service = IngestService::new(ServeConfig::new(4, 64), || {
///     vec![Box::new(Ewma::new(0.2, 3)) as Box<dyn StreamDetector>]
/// });
/// let stream = hash_stream_id("host-a");
/// for i in 0..8 {
///     let ctx = SignalContext::new(i, stream, Symbol::new(0), 5.0);
///     service.enqueue(ctx).expect("queue has room");
/// }
/// let summary = service.drain(&NullSink);
/// assert_eq!(summary.processed, 8);
/// assert_eq!(summary.emitted, 5); // events 0..=2 were warmup
/// ```
pub struct IngestService {
    config: ServeConfig,
    pub(crate) shards: Vec<Mutex<Shard>>,
    stats: Arc<ServiceStats>,
}

impl std::fmt::Debug for IngestService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestService")
            .field("config", &self.config)
            .finish()
    }
}

struct ShardDrain {
    processed: u64,
    emitted: u64,
    escalated: u64,
    degraded: u64,
    deferred: bool,
}

impl IngestService {
    /// Creates a service; `factory` is the tier-2 bank recipe, shared
    /// by all shards.
    pub fn new(
        config: ServeConfig,
        factory: impl Fn() -> Vec<Box<dyn StreamDetector>> + Send + Sync + 'static,
    ) -> IngestService {
        let factory: SharedFactory = Arc::new(factory);
        let shards = (0..config.shards)
            .map(|_| {
                let f = Arc::clone(&factory);
                Mutex::new(Shard {
                    queue: VecDeque::new(),
                    engine: StreamEngine::new(Box::new(move || f()) as BankFactory),
                    tier1: std::collections::HashMap::new(),
                })
            })
            .collect();
        IngestService {
            stats: Arc::new(ServiceStats::new(config.shards)),
            config,
            shards,
        }
    }

    /// The service's shape.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The service's live counters (see [`crate::introspect`]).
    pub fn stats(&self) -> &Arc<ServiceStats> {
        &self.stats
    }

    /// Publishes this service's counters on the process-global
    /// introspection registry (scope's `/servez`). The registration is
    /// cleared when the service is dropped.
    pub fn register_introspection(&self) {
        crate::introspect::register(Arc::clone(&self.stats));
    }

    /// Shard owning `stream_id_hash`.
    pub fn shard_of(&self, stream_id_hash: u64) -> usize {
        (stream_id_hash % self.config.shards as u64) as usize
    }

    pub(crate) fn shard(&self, index: usize) -> std::sync::MutexGuard<'_, Shard> {
        self.shards[index]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Offers one event to its stream's shard.
    ///
    /// # Errors
    ///
    /// Returns [`RejectReason::QueueFull`] — and counts the rejection —
    /// when the shard queue is at capacity. The caller decides whether
    /// to drop, retry after a drain, or shed the stream; the service
    /// itself never buffers beyond the bound.
    pub fn enqueue(&self, ctx: SignalContext) -> Result<(), RejectReason> {
        let index = self.shard_of(ctx.stream_id_hash);
        let mut shard = self.shard(index);
        if shard.queue.len() >= self.config.queue_capacity {
            drop(shard);
            self.stats.shards[index]
                .rejected
                .fetch_add(1, Ordering::Relaxed);
            if detdiv_obs::telemetry_enabled() {
                detdiv_obs::incr_counter("serve/rejected", 1);
            }
            return Err(RejectReason::QueueFull {
                shard: index,
                capacity: self.config.queue_capacity,
            });
        }
        shard.queue.push_back((ctx, Instant::now()));
        let depth = shard.queue.len() as u64;
        drop(shard);
        let stats = &self.stats.shards[index];
        stats.enqueued.fetch_add(1, Ordering::Relaxed);
        stats.depth.store(depth, Ordering::Relaxed);
        Ok(())
    }

    /// Drains every shard queue through detection, fanning shards out
    /// across the global [`detdiv_par`] pool and delivering verdicts to
    /// `sink`.
    ///
    /// Each shard's batch runs under [`detdiv_resil::supervised`] at
    /// the `serve/drain` fault site with the site claimed *before* any
    /// event is popped: an injected (or real) shard-level panic defers
    /// the whole batch — events stay queued for the next drain — and
    /// never takes down sibling shards. Per-stream panics inside
    /// detector slots are finer-grained still: the embedded engine
    /// degrades exactly that slot (see the backpressure suite).
    pub fn drain(&self, sink: &impl VerdictSink) -> DrainSummary {
        let indices: Vec<usize> = (0..self.config.shards).collect();
        let sink: &dyn VerdictSink = sink;
        let policy = RetryPolicy::no_retry();
        let per_shard = detdiv_par::global().map(&indices, |&index| {
            let outcome = detdiv_resil::supervised("serve/drain", &policy, || {
                if detdiv_resil::armed() {
                    detdiv_resil::point("serve/drain");
                }
                self.drain_shard(index, sink)
            });
            match outcome {
                detdiv_par::CellOutcome::Ok { value, .. } => value,
                detdiv_par::CellOutcome::Failed { .. } => {
                    self.stats.shards[index]
                        .deferred
                        .fetch_add(1, Ordering::Relaxed);
                    ShardDrain {
                        processed: 0,
                        emitted: 0,
                        escalated: 0,
                        degraded: 0,
                        deferred: true,
                    }
                }
            }
        });
        let mut summary = DrainSummary::default();
        for shard in &per_shard {
            summary.processed += shard.processed;
            summary.emitted += shard.emitted;
            summary.escalated += shard.escalated;
            summary.degraded += shard.degraded;
            summary.deferred_shards += u64::from(shard.deferred);
        }
        if detdiv_obs::telemetry_enabled() && summary.processed > 0 {
            detdiv_obs::incr_counter("serve/processed", summary.processed);
            detdiv_obs::incr_counter("serve/emitted", summary.emitted);
            if summary.escalated > 0 {
                detdiv_obs::incr_counter("serve/escalated", summary.escalated);
            }
            if summary.degraded > 0 {
                detdiv_obs::incr_counter("serve/degraded", summary.degraded);
            }
        }
        summary
    }

    fn drain_shard(&self, index: usize, sink: &dyn VerdictSink) -> ShardDrain {
        let mut shard = self.shard(index);
        let shard = &mut *shard;
        let mut drain = ShardDrain {
            processed: 0,
            emitted: 0,
            escalated: 0,
            degraded: 0,
            deferred: false,
        };
        let degraded_before = shard.engine.degraded_slots();
        let mut slot_buf: Vec<SlotResult> = Vec::new();
        while let Some((ctx, enqueued_at)) = shard.queue.pop_front() {
            drain.processed += 1;
            match self.config.tiering {
                Tiering::Full => {
                    slot_buf.clear();
                    shard.engine.push(&ctx, &mut slot_buf);
                    let latency = enqueued_at.elapsed();
                    for slot in &slot_buf {
                        drain.emitted += 1;
                        sink.on_verdict(&VerdictEvent {
                            shard: index,
                            stream_hash: ctx.stream_id_hash,
                            seq: ctx.seq,
                            tier: Tier::Model,
                            slot: slot.slot,
                            result: slot.result,
                            latency,
                        });
                    }
                }
                Tiering::Gated(tier1_cfg) => {
                    drain.emitted += drive_gated(
                        shard,
                        index,
                        &ctx,
                        enqueued_at,
                        tier1_cfg,
                        sink,
                        &mut slot_buf,
                        &mut drain.escalated,
                    );
                }
            }
        }
        drain.degraded = shard.engine.degraded_slots() - degraded_before;
        let streams = match self.config.tiering {
            Tiering::Full => shard.engine.stream_count(),
            Tiering::Gated(_) => shard.tier1.len(),
        };
        let stats = &self.stats.shards[index];
        stats.depth.store(0, Ordering::Relaxed);
        stats.streams.store(streams as u64, Ordering::Relaxed);
        stats
            .processed
            .fetch_add(drain.processed, Ordering::Relaxed);
        stats.emitted.fetch_add(drain.emitted, Ordering::Relaxed);
        stats
            .escalated
            .fetch_add(drain.escalated, Ordering::Relaxed);
        stats.degraded.fetch_add(drain.degraded, Ordering::Relaxed);
        drain
    }

    /// Total events currently queued across all shards.
    pub fn pending(&self) -> usize {
        (0..self.config.shards)
            .map(|i| self.shard(i).queue.len())
            .sum()
    }

    /// Distinct streams resident across all shards.
    pub fn stream_count(&self) -> usize {
        (0..self.config.shards)
            .map(|i| {
                let shard = self.shard(i);
                match self.config.tiering {
                    Tiering::Full => shard.engine.stream_count(),
                    Tiering::Gated(_) => shard.tier1.len(),
                }
            })
            .sum()
    }

    /// Detector slots permanently degraded by caught panics, summed
    /// over shards.
    pub fn degraded_slots(&self) -> u64 {
        (0..self.config.shards)
            .map(|i| self.shard(i).engine.degraded_slots())
            .sum()
    }
}

impl Drop for IngestService {
    fn drop(&mut self) {
        crate::introspect::deregister(&self.stats);
    }
}

/// Runs one event through the tier-1 gate and, once escalated, the
/// tier-2 bank. Returns the number of verdicts emitted.
#[allow(clippy::too_many_arguments)]
fn drive_gated(
    shard: &mut Shard,
    index: usize,
    ctx: &SignalContext,
    enqueued_at: Instant,
    tier1_cfg: Tier1Config,
    sink: &dyn VerdictSink,
    slot_buf: &mut Vec<SlotResult>,
    escalated: &mut u64,
) -> u64 {
    let tier1 = shard
        .tier1
        .entry(ctx.stream_id_hash)
        .or_insert_with(|| Tier1 {
            gate: Ewma::new(tier1_cfg.alpha, tier1_cfg.warmup),
            escalated: false,
        });
    let mut emitted = 0u64;
    if !tier1.escalated {
        match tier1.gate.update(ctx) {
            Some(result) => {
                emitted += 1;
                sink.on_verdict(&VerdictEvent {
                    shard: index,
                    stream_hash: ctx.stream_id_hash,
                    seq: ctx.seq,
                    tier: Tier::Gate,
                    slot: 0,
                    result,
                    latency: enqueued_at.elapsed(),
                });
                if result.score >= tier1_cfg.escalate_score {
                    tier1.escalated = true;
                    *escalated += 1;
                }
            }
            None => return 0, // gate warmup: no verdict yet
        }
        if !tier1.escalated {
            return emitted;
        }
        // Fall through: the escalating event is also tier 2's first.
    }
    slot_buf.clear();
    shard.engine.push(ctx, slot_buf);
    let latency = enqueued_at.elapsed();
    for slot in slot_buf.iter() {
        emitted += 1;
        sink.on_verdict(&VerdictEvent {
            shard: index,
            stream_hash: ctx.stream_id_hash,
            seq: ctx.seq,
            tier: Tier::Model,
            slot: slot.slot,
            result: slot.result,
            latency,
        });
    }
    emitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_sequence::Symbol;
    use detdiv_stream::hash_stream_id;
    use std::sync::Mutex as StdMutex;

    fn ewma_bank() -> Vec<Box<dyn StreamDetector>> {
        vec![Box::new(Ewma::new(0.2, 3)) as Box<dyn StreamDetector>]
    }

    #[derive(Default)]
    struct Collect(StdMutex<Vec<VerdictEvent>>);

    impl VerdictSink for Collect {
        fn on_verdict(&self, event: &VerdictEvent) {
            self.0.lock().unwrap().push(*event);
        }
    }

    #[test]
    fn enqueue_routes_by_hash_and_drain_processes_fifo() {
        let service = IngestService::new(ServeConfig::new(4, 64), ewma_bank);
        let a = hash_stream_id("a");
        let b = hash_stream_id("b");
        for i in 0..6u64 {
            service
                .enqueue(SignalContext::new(i, a, Symbol::new(0), i as f64))
                .unwrap();
            service
                .enqueue(SignalContext::new(i, b, Symbol::new(0), 1.0))
                .unwrap();
        }
        assert_eq!(service.pending(), 12);
        let sink = Collect::default();
        let summary = service.drain(&sink);
        assert_eq!(summary.processed, 12);
        assert_eq!(service.pending(), 0);
        assert_eq!(service.stream_count(), 2);
        // Ewma warmup 3 → 3 verdicts per stream.
        assert_eq!(summary.emitted, 6);
        let events = sink.0.lock().unwrap();
        let a_seqs: Vec<u64> = events
            .iter()
            .filter(|e| e.stream_hash == a)
            .map(|e| e.seq)
            .collect();
        assert_eq!(a_seqs, vec![3, 4, 5], "per-stream verdicts in order");
        for e in events.iter() {
            assert_eq!(e.shard, service.shard_of(e.stream_hash));
            assert_eq!(e.tier, Tier::Model);
        }
    }

    #[test]
    fn full_queue_rejects_with_typed_reason() {
        let service = IngestService::new(ServeConfig::new(1, 3), ewma_bank);
        let s = hash_stream_id("only");
        for i in 0..3u64 {
            service
                .enqueue(SignalContext::new(i, s, Symbol::new(0), 1.0))
                .unwrap();
        }
        let err = service
            .enqueue(SignalContext::new(3, s, Symbol::new(0), 1.0))
            .unwrap_err();
        assert_eq!(
            err,
            RejectReason::QueueFull {
                shard: 0,
                capacity: 3
            }
        );
        assert_eq!(err.to_string(), "shard 0 queue full (capacity 3)");
        assert_eq!(
            service.stats().shards[0].rejected.load(Ordering::Relaxed),
            1
        );
        // A drain frees the queue; the rejected event can be re-offered.
        service.drain(&NullSink);
        assert!(service
            .enqueue(SignalContext::new(3, s, Symbol::new(0), 1.0))
            .is_ok());
    }

    #[test]
    fn gated_tiering_escalates_only_anomalous_streams() {
        let tier1 = Tier1Config {
            alpha: 0.3,
            warmup: 4,
            escalate_score: 0.5,
        };
        let service = IngestService::new(ServeConfig::new(2, 256).gated(tier1), ewma_bank);
        let quiet = hash_stream_id("quiet");
        let noisy = hash_stream_id("noisy");
        for i in 0..20u64 {
            let spike = if i == 12 { 90.0 } else { 5.0 };
            service
                .enqueue(SignalContext::new(i, quiet, Symbol::new(0), 5.0))
                .unwrap();
            service
                .enqueue(SignalContext::new(i, noisy, Symbol::new(0), spike))
                .unwrap();
        }
        let sink = Collect::default();
        let summary = service.drain(&sink);
        assert_eq!(summary.escalated, 1, "only the spiking stream escalates");
        let events = sink.0.lock().unwrap();
        assert!(
            events
                .iter()
                .filter(|e| e.stream_hash == quiet)
                .all(|e| e.tier == Tier::Gate),
            "quiet stream never reaches tier 2"
        );
        assert!(
            events
                .iter()
                .any(|e| e.stream_hash == noisy && e.tier == Tier::Model),
            "escalated stream gets tier-2 verdicts"
        );
        // The escalating event itself is tier 2's first event.
        let first_model_seq = events
            .iter()
            .filter(|e| e.stream_hash == noisy && e.tier == Tier::Model)
            .map(|e| e.seq)
            .min()
            .unwrap();
        let escalation_seq = events
            .iter()
            .filter(|e| e.stream_hash == noisy && e.tier == Tier::Gate)
            .map(|e| e.seq)
            .max()
            .unwrap();
        assert_eq!(
            first_model_seq,
            escalation_seq + 3,
            "tier-2 Ewma warmup (3) after escalation"
        );
        assert_eq!(service.stream_count(), 2);
    }

    #[test]
    fn drain_summary_is_stable_across_repeat_drains() {
        let service = IngestService::new(ServeConfig::new(2, 16), ewma_bank);
        let s = hash_stream_id("idle");
        service
            .enqueue(SignalContext::new(0, s, Symbol::new(0), 1.0))
            .unwrap();
        service.drain(&NullSink);
        let empty = service.drain(&NullSink);
        assert_eq!(empty, DrainSummary::default(), "empty drain is a no-op");
    }
}

//! The sharded ingest service.
//!
//! [`IngestService`] owns N shards, each a bounded ingestion queue plus
//! an embedded [`StreamEngine`]. Producers call
//! [`enqueue`](IngestService::enqueue) (cheap: one lock, one push, or a
//! typed rejection); a drain cycle fans the shards out across the
//! [`detdiv_par`] pool, each worker draining whole shards so any one
//! stream's events are always processed in order by a single thread.
//!
//! Determinism: shard assignment is `hash % shards`, drains process
//! each shard FIFO, and the pool writes results to pre-indexed slots —
//! so per-stream verdict sequences are identical at every worker
//! count. Wall-clock latency is the only thing that varies.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use detdiv_guard::introspect::GuardStats;
use detdiv_guard::{DegradationLevel, GuardConfig, HibernationStore, PressureSample};
use detdiv_resil::RetryPolicy;
use detdiv_stream::{
    DetectionResult, Ewma, SignalContext, SlotResult, StreamDetector, StreamEngine,
};

use crate::config::{ServeConfig, Tier1Config, Tiering};
use crate::guard::{
    GuardRuntime, GuardShard, REASON_BREAKER_FALLBACK, REASON_ESCALATION_DEFERRED,
    REASON_ESCALATION_DEFERRED_BREAKER, REASON_TIER1_ONLY,
};
use crate::introspect::ServiceStats;

/// Why an event was not accepted. Rejection is the *only* backpressure
/// mechanism: the service never buffers beyond the configured bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The stream's shard queue is at capacity; retry after a drain.
    QueueFull {
        /// The full shard.
        shard: usize,
        /// Its configured bound (current depth equals it).
        capacity: usize,
    },
    /// The shard's degradation ladder is at `Shedding`: the guard is
    /// deliberately refusing new load until pressure recedes. Retry
    /// after the ladder recovers (drains keep running while shedding).
    Shedding {
        /// The shedding shard.
        shard: usize,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { shard, capacity } => {
                write!(f, "shard {shard} queue full (capacity {capacity})")
            }
            RejectReason::Shedding { shard } => {
                write!(f, "shard {shard} shedding load (overload protection)")
            }
        }
    }
}

/// Which tier produced a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The cheap always-on tier-1 gate.
    Gate,
    /// A full tier-2 detector bank.
    Model,
}

/// One verdict delivered to a [`VerdictSink`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerdictEvent {
    /// Shard that processed the event.
    pub shard: usize,
    /// Pre-hashed stream id.
    pub stream_hash: u64,
    /// The event's per-stream sequence number.
    pub seq: u64,
    /// Emitting tier.
    pub tier: Tier,
    /// Detector slot within the tier (always 0 for the gate).
    pub slot: usize,
    /// The verdict itself.
    pub result: DetectionResult,
    /// Enqueue→verdict latency. Wall-clock: the only
    /// scheduling-dependent field, so deterministic sinks must ignore
    /// it.
    pub latency: Duration,
}

/// Receives verdicts during a drain. Called from pool workers, hence
/// `&self` + `Sync`; events for one stream always arrive in order from
/// a single worker at a time.
pub trait VerdictSink: Sync {
    /// One verdict. Keep it cheap — this is the drain hot path.
    fn on_verdict(&self, event: &VerdictEvent);
}

/// A sink that drops everything (throughput measurement, warm-ups).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl VerdictSink for NullSink {
    fn on_verdict(&self, _event: &VerdictEvent) {}
}

/// What one [`IngestService::drain`] cycle did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainSummary {
    /// Events processed through detection.
    pub processed: u64,
    /// Verdicts emitted to the sink.
    pub emitted: u64,
    /// Streams escalated from tier 1 to tier 2 this cycle.
    pub escalated: u64,
    /// Detector slots newly degraded by caught panics.
    pub degraded: u64,
    /// Shards whose batch was deferred by shard-level supervision
    /// (their events remain queued for the next drain).
    pub deferred_shards: u64,
}

/// Shared bank factory: every shard's engine builds per-stream banks
/// from the same recipe.
type SharedFactory = Arc<dyn Fn() -> Vec<Box<dyn StreamDetector>> + Send + Sync>;
type BankFactory = Box<dyn FnMut() -> Vec<Box<dyn StreamDetector>> + Send>;

/// Tier-1 gate state for one stream (gated tiering only).
pub(crate) struct Tier1 {
    pub(crate) gate: Ewma,
    pub(crate) escalated: bool,
}

pub(crate) struct Shard {
    pub(crate) queue: VecDeque<(SignalContext, Instant)>,
    pub(crate) engine: StreamEngine<BankFactory>,
    /// Keyed by stream hash; present for every stream the shard has
    /// seen when tiering is gated, empty under full tiering.
    pub(crate) tier1: std::collections::HashMap<u64, Tier1>,
    /// Overload-protection state; `None` unless the service was built
    /// with [`IngestService::with_guard`].
    pub(crate) guard: Option<GuardShard>,
}

/// The sharded multi-stream ingest service.
///
/// # Examples
///
/// ```
/// use detdiv_serve::{IngestService, NullSink, ServeConfig};
/// use detdiv_stream::{hash_stream_id, Ewma, SignalContext, StreamDetector};
/// use detdiv_sequence::Symbol;
///
/// let service = IngestService::new(ServeConfig::new(4, 64), || {
///     vec![Box::new(Ewma::new(0.2, 3)) as Box<dyn StreamDetector>]
/// });
/// let stream = hash_stream_id("host-a");
/// for i in 0..8 {
///     let ctx = SignalContext::new(i, stream, Symbol::new(0), 5.0);
///     service.enqueue(ctx).expect("queue has room");
/// }
/// let summary = service.drain(&NullSink);
/// assert_eq!(summary.processed, 8);
/// assert_eq!(summary.emitted, 5); // events 0..=2 were warmup
/// ```
pub struct IngestService {
    config: ServeConfig,
    pub(crate) shards: Vec<Mutex<Shard>>,
    stats: Arc<ServiceStats>,
    pub(crate) guard: Option<GuardRuntime>,
}

impl std::fmt::Debug for IngestService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestService")
            .field("config", &self.config)
            .finish()
    }
}

struct ShardDrain {
    processed: u64,
    emitted: u64,
    escalated: u64,
    degraded: u64,
    deferred: bool,
}

impl IngestService {
    /// Creates a service; `factory` is the tier-2 bank recipe, shared
    /// by all shards.
    pub fn new(
        config: ServeConfig,
        factory: impl Fn() -> Vec<Box<dyn StreamDetector>> + Send + Sync + 'static,
    ) -> IngestService {
        let factory: SharedFactory = Arc::new(factory);
        let shards = (0..config.shards)
            .map(|_| {
                let f = Arc::clone(&factory);
                Mutex::new(Shard {
                    queue: VecDeque::new(),
                    engine: StreamEngine::new(Box::new(move || f()) as BankFactory),
                    tier1: std::collections::HashMap::new(),
                    guard: None,
                })
            })
            .collect();
        IngestService {
            stats: Arc::new(ServiceStats::new(config.shards)),
            config,
            shards,
            guard: None,
        }
    }

    /// Creates a service with the overload-protection guard attached:
    /// a per-shard degradation ladder, a tier-2 escalation circuit
    /// breaker, and (when `guard_config.spill_dir` is set) cold-stream
    /// hibernation under the byte budget. See the `detdiv-guard` crate
    /// docs for the policy semantics.
    ///
    /// # Panics
    ///
    /// Panics unless `config.tiering` is [`Tiering::Gated`]: the guard's
    /// degraded modes are defined in terms of the tier-1 gate, so full
    /// tiering has nothing to degrade to.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures creating the hibernation segment files
    /// (`<spill_dir>/shard-<i>.seg`).
    pub fn with_guard(
        config: ServeConfig,
        guard_config: GuardConfig,
        factory: impl Fn() -> Vec<Box<dyn StreamDetector>> + Send + Sync + 'static,
    ) -> std::io::Result<IngestService> {
        assert!(
            matches!(config.tiering, Tiering::Gated(_)),
            "the guard requires gated tiering"
        );
        // Estimate per-stream costs once from a probe bank: the gate is
        // a small fixed-size EWMA plus map-entry overhead; a tier-2
        // bank is each slot's state-bytes cap plus the same overhead.
        let gate_cost = 64u64;
        let bank_cost: u64 = factory()
            .iter()
            .map(|d| d.state_bytes_cap() as u64 + 64)
            .sum();
        let mut service = IngestService::new(config, factory);
        if let Some(dir) = &guard_config.spill_dir {
            std::fs::create_dir_all(dir)?;
        }
        for (index, shard) in service.shards.iter().enumerate() {
            let store = match &guard_config.spill_dir {
                Some(dir) => Some(HibernationStore::create(
                    dir.join(format!("shard-{index}.seg")),
                )?),
                None => None,
            };
            shard.lock().unwrap_or_else(PoisonError::into_inner).guard =
                Some(GuardShard::new(&guard_config, store));
        }
        service.guard = Some(GuardRuntime {
            stats: Arc::new(GuardStats::new(service.config.shards)),
            config: guard_config,
            gate_cost,
            bank_cost,
        });
        Ok(service)
    }

    /// The service's shape.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The service's live counters (see [`crate::introspect`]).
    pub fn stats(&self) -> &Arc<ServiceStats> {
        &self.stats
    }

    /// The guard's live counters, when the service was built with
    /// [`with_guard`](IngestService::with_guard).
    pub fn guard_stats(&self) -> Option<&Arc<GuardStats>> {
        self.guard.as_ref().map(|g| &g.stats)
    }

    /// Every shard's current degradation level (all `Full` without a
    /// guard).
    pub fn guard_levels(&self) -> Vec<DegradationLevel> {
        (0..self.config.shards)
            .map(|i| {
                self.shard(i)
                    .guard
                    .as_ref()
                    .map(|g| g.ladder.level())
                    .unwrap_or(DegradationLevel::Full)
            })
            .collect()
    }

    /// The full ladder-transition history, as `(shard, transition)`
    /// pairs in shard order (chronological within a shard). Empty
    /// without a guard.
    pub fn guard_transitions(&self) -> Vec<(usize, detdiv_guard::LadderTransition)> {
        let mut out = Vec::new();
        for index in 0..self.config.shards {
            let shard = self.shard(index);
            if let Some(g) = &shard.guard {
                out.extend(g.transitions.iter().map(|&t| (index, t)));
            }
        }
        out
    }

    /// Publishes this service's counters on the process-global
    /// introspection registry (scope's `/servez`, and `/guardz` when a
    /// guard is attached). The registration is cleared when the service
    /// is dropped.
    pub fn register_introspection(&self) {
        crate::introspect::register(Arc::clone(&self.stats));
        if let Some(guard) = &self.guard {
            detdiv_guard::introspect::register(Arc::clone(&guard.stats));
        }
    }

    /// Shard owning `stream_id_hash`.
    pub fn shard_of(&self, stream_id_hash: u64) -> usize {
        (stream_id_hash % self.config.shards as u64) as usize
    }

    pub(crate) fn shard(&self, index: usize) -> std::sync::MutexGuard<'_, Shard> {
        self.shards[index]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Offers one event to its stream's shard.
    ///
    /// # Errors
    ///
    /// Returns [`RejectReason::QueueFull`] — and counts the rejection —
    /// when the shard queue is at capacity. The caller decides whether
    /// to drop, retry after a drain, or shed the stream; the service
    /// itself never buffers beyond the bound.
    pub fn enqueue(&self, ctx: SignalContext) -> Result<(), RejectReason> {
        let index = self.shard_of(ctx.stream_id_hash);
        if let Some(guard) = &self.guard {
            // The drain publishes each shard's ladder level at cycle
            // end; a `Shedding` shard refuses new load without taking
            // its lock.
            if guard.stats.shard_level(index) == DegradationLevel::Shedding {
                guard.stats.shards[index]
                    .shed
                    .fetch_add(1, Ordering::Relaxed);
                self.stats.shards[index]
                    .rejected
                    .fetch_add(1, Ordering::Relaxed);
                if detdiv_obs::telemetry_enabled() {
                    detdiv_obs::incr_counter("serve/shed", 1);
                }
                return Err(RejectReason::Shedding { shard: index });
            }
        }
        let mut shard = self.shard(index);
        if shard.queue.len() >= self.config.queue_capacity {
            drop(shard);
            self.stats.shards[index]
                .rejected
                .fetch_add(1, Ordering::Relaxed);
            if detdiv_obs::telemetry_enabled() {
                detdiv_obs::incr_counter("serve/rejected", 1);
            }
            return Err(RejectReason::QueueFull {
                shard: index,
                capacity: self.config.queue_capacity,
            });
        }
        shard.queue.push_back((ctx, Instant::now()));
        let depth = shard.queue.len() as u64;
        drop(shard);
        let stats = &self.stats.shards[index];
        stats.enqueued.fetch_add(1, Ordering::Relaxed);
        stats.depth.store(depth, Ordering::Relaxed);
        Ok(())
    }

    /// Drains every shard queue through detection, fanning shards out
    /// across the global [`detdiv_par`] pool and delivering verdicts to
    /// `sink`.
    ///
    /// Each shard's batch runs under [`detdiv_resil::supervised`] at
    /// the `serve/drain` fault site with the site claimed *before* any
    /// event is popped: an injected (or real) shard-level panic defers
    /// the whole batch — events stay queued for the next drain — and
    /// never takes down sibling shards. Per-stream panics inside
    /// detector slots are finer-grained still: the embedded engine
    /// degrades exactly that slot (see the backpressure suite).
    pub fn drain(&self, sink: &impl VerdictSink) -> DrainSummary {
        let indices: Vec<usize> = (0..self.config.shards).collect();
        let sink: &dyn VerdictSink = sink;
        let policy = RetryPolicy::no_retry();
        let per_shard = detdiv_par::global().map(&indices, |&index| {
            let outcome = detdiv_resil::supervised("serve/drain", &policy, || {
                if detdiv_resil::armed() {
                    detdiv_resil::point("serve/drain");
                }
                self.drain_shard(index, sink)
            });
            match outcome {
                detdiv_par::CellOutcome::Ok { value, .. } => value,
                detdiv_par::CellOutcome::Failed { .. } => {
                    self.stats.shards[index]
                        .deferred
                        .fetch_add(1, Ordering::Relaxed);
                    ShardDrain {
                        processed: 0,
                        emitted: 0,
                        escalated: 0,
                        degraded: 0,
                        deferred: true,
                    }
                }
            }
        });
        let mut summary = DrainSummary::default();
        for shard in &per_shard {
            summary.processed += shard.processed;
            summary.emitted += shard.emitted;
            summary.escalated += shard.escalated;
            summary.degraded += shard.degraded;
            summary.deferred_shards += u64::from(shard.deferred);
        }
        if detdiv_obs::telemetry_enabled() && summary.processed > 0 {
            detdiv_obs::incr_counter("serve/processed", summary.processed);
            detdiv_obs::incr_counter("serve/emitted", summary.emitted);
            if summary.escalated > 0 {
                detdiv_obs::incr_counter("serve/escalated", summary.escalated);
            }
            if summary.degraded > 0 {
                detdiv_obs::incr_counter("serve/degraded", summary.degraded);
            }
        }
        summary
    }

    fn drain_shard(&self, index: usize, sink: &dyn VerdictSink) -> ShardDrain {
        let mut shard = self.shard(index);
        let shard = &mut *shard;
        let mut drain = ShardDrain {
            processed: 0,
            emitted: 0,
            escalated: 0,
            degraded: 0,
            deferred: false,
        };
        let started = Instant::now();
        // Guard cycle begin: advance the breaker's cooldown clock, then
        // classify this cycle's pressure sample and let the ladder
        // react. Every input is a deterministic counter (the queue
        // depth at cycle start, the previous cycle's resident-bytes
        // estimate and deadline flag), so the ladder trajectory is
        // width-invariant.
        if let (Some(g), Some(rt)) = (shard.guard.as_mut(), self.guard.as_ref()) {
            if let Some((from, to)) = g.breaker.on_cycle() {
                g.push_event("breaker", from.name(), to.name(), 0);
            }
            let sample = PressureSample {
                queue_depth: shard.queue.len(),
                queue_capacity: self.config.queue_capacity,
                resident_bytes: g.resident_bytes,
                budget_bytes: rt.config.shard_budget(self.config.shards),
                deadline_breached: g.deadline_breached,
            };
            g.deadline_breached = false;
            if let Some(t) = g.ladder.observe(sample.classify(&rt.config)) {
                g.transitions.push(t);
                g.push_event("ladder", t.from.name(), t.to.name(), 0);
            }
        }
        let degraded_before = shard.engine.degraded_slots();
        let mut slot_buf: Vec<SlotResult> = Vec::new();
        while let Some((ctx, enqueued_at)) = shard.queue.pop_front() {
            drain.processed += 1;
            match self.config.tiering {
                Tiering::Full => {
                    slot_buf.clear();
                    shard.engine.push(&ctx, &mut slot_buf);
                    let latency = enqueued_at.elapsed();
                    for slot in &slot_buf {
                        drain.emitted += 1;
                        sink.on_verdict(&VerdictEvent {
                            shard: index,
                            stream_hash: ctx.stream_id_hash,
                            seq: ctx.seq,
                            tier: Tier::Model,
                            slot: slot.slot,
                            result: slot.result,
                            latency,
                        });
                    }
                }
                Tiering::Gated(tier1_cfg) => {
                    rehydrate_if_hibernated(shard, &ctx, tier1_cfg);
                    drain.emitted += drive_gated(
                        shard,
                        index,
                        &ctx,
                        enqueued_at,
                        tier1_cfg,
                        sink,
                        &mut slot_buf,
                        &mut drain.escalated,
                    );
                    if let Some(g) = shard.guard.as_mut() {
                        let cycle = g.ladder.cycle();
                        g.last_touch.insert(ctx.stream_id_hash, cycle);
                    }
                }
            }
        }
        drain.degraded = shard.engine.degraded_slots() - degraded_before;
        self.guard_cycle_end(index, shard, started);
        let streams = match self.config.tiering {
            Tiering::Full => shard.engine.stream_count(),
            Tiering::Gated(_) => shard.tier1.len(),
        };
        let stats = &self.stats.shards[index];
        stats.depth.store(0, Ordering::Relaxed);
        stats.streams.store(streams as u64, Ordering::Relaxed);
        stats
            .processed
            .fetch_add(drain.processed, Ordering::Relaxed);
        stats.emitted.fetch_add(drain.emitted, Ordering::Relaxed);
        stats
            .escalated
            .fetch_add(drain.escalated, Ordering::Relaxed);
        stats.degraded.fetch_add(drain.degraded, Ordering::Relaxed);
        drain
    }

    /// Guard end-of-cycle work: the stuck-shard watchdog, the resident
    /// estimate + hibernation pass, and publishing gauges/flight
    /// records. Runs under the shard lock, after the queue has drained.
    fn guard_cycle_end(&self, index: usize, shard: &mut Shard, started: Instant) {
        let Some(rt) = self.guard.as_ref() else {
            return;
        };
        let Some(g) = shard.guard.as_mut() else {
            return;
        };
        // Stuck-shard watchdog: a drain that blew its wall-clock
        // deadline counts as a breaker failure, degrades the shard to
        // tier-1 immediately, and raises pressure for the next cycle.
        if let Some(deadline) = rt.config.drain_deadline {
            if started.elapsed() > deadline {
                g.deadline_breached = true;
                if let Some((from, to)) = g.breaker.on_failure() {
                    g.push_event("breaker", from.name(), to.name(), 0);
                }
                let (from, to) = match g.ladder.force_at_least(DegradationLevel::Tier1Only) {
                    Some(t) => {
                        g.transitions.push(t);
                        (t.from.name(), t.to.name())
                    }
                    None => (g.ladder.level().name(), g.ladder.level().name()),
                };
                g.push_event("watchdog", from, to, 0);
            }
        }
        // Resident estimate: every gated stream costs a gate entry;
        // escalated streams (those with a bank in the engine) cost the
        // bank on top.
        let mut resident = shard.tier1.len() as u64 * rt.gate_cost
            + shard.engine.stream_count() as u64 * rt.bank_cost;
        // Hibernation: while over the shard's budget slice, spill the
        // least-recently-touched streams to the checksummed segment.
        // LRU order is (last-touch cycle, hash) — both deterministic —
        // so the spill sequence is width-invariant too.
        if let Some(budget) = rt.config.shard_budget(self.config.shards) {
            if resident > budget && g.store.is_some() {
                let mut candidates: Vec<(u64, u64)> = shard
                    .tier1
                    .keys()
                    .map(|&h| (g.last_touch.get(&h).copied().unwrap_or(0), h))
                    .collect();
                candidates.sort_unstable();
                for (_, hash) in candidates {
                    if resident <= budget {
                        break;
                    }
                    let slots = shard.engine.snapshot_stream(hash).unwrap_or_default();
                    let line =
                        crate::snapshot::render_stream_line(hash, shard.tier1.get(&hash), &slots);
                    let store = g.store.as_mut().expect("checked above");
                    if store.spill(hash, &line).is_err() {
                        // An unwritable segment leaves the stream
                        // resident; pressure stays high instead of
                        // losing state.
                        continue;
                    }
                    shard.tier1.remove(&hash);
                    let had_bank = shard.engine.close_stream(hash);
                    g.last_touch.remove(&hash);
                    resident = resident
                        .saturating_sub(rt.gate_cost + if had_bank { rt.bank_cost } else { 0 });
                    g.push_event("hibernate", "", "spilled", hash);
                }
            }
        }
        g.resident_bytes = resident;
        // Publish gauges and counters, then flush this cycle's events
        // to the flight recorder as one-line guard records.
        let gs = &rt.stats.shards[index];
        gs.level.store(g.ladder.level().index(), Ordering::Relaxed);
        gs.breaker_state
            .store(g.breaker.state().index(), Ordering::Relaxed);
        gs.resident_bytes.store(resident, Ordering::Relaxed);
        rt.stats.update_resident_peak();
        let armed = detdiv_flight::armed();
        for event in g.events.drain(..) {
            match event.kind {
                "ladder" => {
                    gs.ladder_transitions.fetch_add(1, Ordering::Relaxed);
                }
                "breaker" if event.to == "open" => {
                    gs.breaker_opens.fetch_add(1, Ordering::Relaxed);
                }
                "hibernate" => {
                    gs.hibernated.fetch_add(1, Ordering::Relaxed);
                }
                "rehydrate" => {
                    gs.rehydrated.fetch_add(1, Ordering::Relaxed);
                }
                "watchdog" => {
                    gs.watchdog_trips.fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
            if armed {
                detdiv_flight::record(
                    detdiv_flight::GuardRecord {
                        shard: index,
                        seq: g.seq,
                        cycle: event.cycle,
                        kind: event.kind,
                        from: event.from,
                        to: event.to,
                        stream_hash: event.stream_hash,
                    }
                    .render(),
                );
            }
            g.seq += 1;
        }
    }

    /// Total events currently queued across all shards.
    pub fn pending(&self) -> usize {
        (0..self.config.shards)
            .map(|i| self.shard(i).queue.len())
            .sum()
    }

    /// Distinct streams resident across all shards.
    pub fn stream_count(&self) -> usize {
        (0..self.config.shards)
            .map(|i| {
                let shard = self.shard(i);
                match self.config.tiering {
                    Tiering::Full => shard.engine.stream_count(),
                    Tiering::Gated(_) => shard.tier1.len(),
                }
            })
            .sum()
    }

    /// Detector slots permanently degraded by caught panics, summed
    /// over shards.
    pub fn degraded_slots(&self) -> u64 {
        (0..self.config.shards)
            .map(|i| self.shard(i).engine.degraded_slots())
            .sum()
    }
}

impl Drop for IngestService {
    fn drop(&mut self) {
        crate::introspect::deregister(&self.stats);
        if let Some(guard) = &self.guard {
            detdiv_guard::introspect::deregister(&guard.stats);
        }
    }
}

/// Rehydrates a hibernated stream before its event is processed: the
/// spilled line is recalled from the segment, checksum-verified, parsed
/// and applied. A corrupt or unparsable record degrades the stream to a
/// cold start (it rebuilds from gate warmup) — never a panic.
fn rehydrate_if_hibernated(shard: &mut Shard, ctx: &SignalContext, tier1_cfg: Tier1Config) {
    let hash = ctx.stream_id_hash;
    let payload = match shard.guard.as_mut().and_then(|g| g.store.as_mut()) {
        Some(store) if store.contains(hash) => store.recall(hash).ok().flatten(),
        _ => return,
    };
    let parsed = payload
        .as_deref()
        .and_then(crate::snapshot::parse_stream_line);
    if let Some(p) = &parsed {
        crate::snapshot::apply_parsed_stream(shard, p, Some(tier1_cfg));
    }
    if let Some(g) = shard.guard.as_mut() {
        g.push_event(
            "rehydrate",
            "",
            if parsed.is_some() { "restored" } else { "cold" },
            hash,
        );
    }
}

/// Runs one event through the tier-1 gate and, once escalated, the
/// tier-2 bank — subject to the guard's degradation level and circuit
/// breaker when one is attached. Returns the number of verdicts
/// emitted.
///
/// Without a guard (or with one at `Full` and a closed breaker) the
/// emission sequence is byte-identical to the pre-guard service, which
/// the differential suite pins down.
#[allow(clippy::too_many_arguments)]
fn drive_gated(
    shard: &mut Shard,
    index: usize,
    ctx: &SignalContext,
    enqueued_at: Instant,
    tier1_cfg: Tier1Config,
    sink: &dyn VerdictSink,
    slot_buf: &mut Vec<SlotResult>,
    escalated: &mut u64,
) -> u64 {
    let (level, breaker_admits) = match &shard.guard {
        Some(g) => (g.ladder.level(), g.breaker.admits()),
        None => (DegradationLevel::Full, true),
    };
    let guarded = shard.guard.is_some();
    let tier1 = shard
        .tier1
        .entry(ctx.stream_id_hash)
        .or_insert_with(|| Tier1 {
            gate: Ewma::new(tier1_cfg.alpha, tier1_cfg.warmup),
            escalated: false,
        });
    let mut emitted = 0u64;
    if !tier1.escalated {
        let Some(result) = tier1.gate.update(ctx) else {
            return 0; // gate warmup: no verdict yet
        };
        let wants_escalation = result.score >= tier1_cfg.escalate_score;
        // New escalations are admitted only at Full with a non-open
        // breaker; a deferred escalation still emits the gate verdict,
        // retagged so consumers can see the degradation.
        let admit = level == DegradationLevel::Full && breaker_admits;
        let result = if wants_escalation && !admit {
            DetectionResult {
                reason: if level != DegradationLevel::Full {
                    REASON_ESCALATION_DEFERRED
                } else {
                    REASON_ESCALATION_DEFERRED_BREAKER
                },
                ..result
            }
        } else {
            result
        };
        emitted += 1;
        sink.on_verdict(&VerdictEvent {
            shard: index,
            stream_hash: ctx.stream_id_hash,
            seq: ctx.seq,
            tier: Tier::Gate,
            slot: 0,
            result,
            latency: enqueued_at.elapsed(),
        });
        if !(wants_escalation && admit) {
            return emitted;
        }
        tier1.escalated = true;
        *escalated += 1;
        // Fall through: the escalating event is also tier 2's first.
    } else if level >= DegradationLevel::Tier1Only || !breaker_admits {
        // Degraded fallback: the escalated stream's tier-2 bank is
        // suppressed this cycle; its gate verdict stands in at halved
        // confidence so downstream consumers can discount it.
        let reason = if !breaker_admits {
            REASON_BREAKER_FALLBACK
        } else {
            REASON_TIER1_ONLY
        };
        if let Some(result) = tier1.gate.update(ctx) {
            let result = DetectionResult {
                confidence: result.confidence * 0.5,
                reason,
                ..result
            };
            emitted += 1;
            sink.on_verdict(&VerdictEvent {
                shard: index,
                stream_hash: ctx.stream_id_hash,
                seq: ctx.seq,
                tier: Tier::Gate,
                slot: 0,
                result,
                latency: enqueued_at.elapsed(),
            });
            if detdiv_flight::armed() {
                detdiv_flight::record(
                    detdiv_flight::StreamRecord {
                        stream_label: "",
                        stream_hash: ctx.stream_id_hash,
                        slot: 0,
                        detector: "guard-fallback",
                        event_index: ctx.seq,
                        score: result.score,
                        confidence: result.confidence,
                        reason,
                        warmup: false,
                    }
                    .render(),
                );
            }
        }
        return emitted;
    }
    let degraded_before = if guarded {
        shard.engine.degraded_slots()
    } else {
        0
    };
    slot_buf.clear();
    shard.engine.push(ctx, slot_buf);
    let latency = enqueued_at.elapsed();
    for slot in slot_buf.iter() {
        emitted += 1;
        sink.on_verdict(&VerdictEvent {
            shard: index,
            stream_hash: ctx.stream_id_hash,
            seq: ctx.seq,
            tier: Tier::Model,
            slot: slot.slot,
            result: slot.result,
            latency,
        });
    }
    // Breaker accounting: a push that newly degraded a slot is a
    // supervised failure; a clean push is a success (and closes a
    // half-open breaker's probe).
    if guarded {
        let failed = shard.engine.degraded_slots() > degraded_before;
        if let Some(g) = shard.guard.as_mut() {
            let transition = if failed {
                g.breaker.on_failure()
            } else {
                g.breaker.on_success()
            };
            if let Some((from, to)) = transition {
                g.push_event("breaker", from.name(), to.name(), ctx.stream_id_hash);
            }
        }
    }
    emitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use detdiv_sequence::Symbol;
    use detdiv_stream::hash_stream_id;
    use std::sync::Mutex as StdMutex;

    fn ewma_bank() -> Vec<Box<dyn StreamDetector>> {
        vec![Box::new(Ewma::new(0.2, 3)) as Box<dyn StreamDetector>]
    }

    #[derive(Default)]
    struct Collect(StdMutex<Vec<VerdictEvent>>);

    impl VerdictSink for Collect {
        fn on_verdict(&self, event: &VerdictEvent) {
            self.0.lock().unwrap().push(*event);
        }
    }

    #[test]
    fn enqueue_routes_by_hash_and_drain_processes_fifo() {
        let service = IngestService::new(ServeConfig::new(4, 64), ewma_bank);
        let a = hash_stream_id("a");
        let b = hash_stream_id("b");
        for i in 0..6u64 {
            service
                .enqueue(SignalContext::new(i, a, Symbol::new(0), i as f64))
                .unwrap();
            service
                .enqueue(SignalContext::new(i, b, Symbol::new(0), 1.0))
                .unwrap();
        }
        assert_eq!(service.pending(), 12);
        let sink = Collect::default();
        let summary = service.drain(&sink);
        assert_eq!(summary.processed, 12);
        assert_eq!(service.pending(), 0);
        assert_eq!(service.stream_count(), 2);
        // Ewma warmup 3 → 3 verdicts per stream.
        assert_eq!(summary.emitted, 6);
        let events = sink.0.lock().unwrap();
        let a_seqs: Vec<u64> = events
            .iter()
            .filter(|e| e.stream_hash == a)
            .map(|e| e.seq)
            .collect();
        assert_eq!(a_seqs, vec![3, 4, 5], "per-stream verdicts in order");
        for e in events.iter() {
            assert_eq!(e.shard, service.shard_of(e.stream_hash));
            assert_eq!(e.tier, Tier::Model);
        }
    }

    #[test]
    fn full_queue_rejects_with_typed_reason() {
        let service = IngestService::new(ServeConfig::new(1, 3), ewma_bank);
        let s = hash_stream_id("only");
        for i in 0..3u64 {
            service
                .enqueue(SignalContext::new(i, s, Symbol::new(0), 1.0))
                .unwrap();
        }
        let err = service
            .enqueue(SignalContext::new(3, s, Symbol::new(0), 1.0))
            .unwrap_err();
        assert_eq!(
            err,
            RejectReason::QueueFull {
                shard: 0,
                capacity: 3
            }
        );
        assert_eq!(err.to_string(), "shard 0 queue full (capacity 3)");
        assert_eq!(
            service.stats().shards[0].rejected.load(Ordering::Relaxed),
            1
        );
        // A drain frees the queue; the rejected event can be re-offered.
        service.drain(&NullSink);
        assert!(service
            .enqueue(SignalContext::new(3, s, Symbol::new(0), 1.0))
            .is_ok());
    }

    #[test]
    fn gated_tiering_escalates_only_anomalous_streams() {
        let tier1 = Tier1Config {
            alpha: 0.3,
            warmup: 4,
            escalate_score: 0.5,
        };
        let service = IngestService::new(ServeConfig::new(2, 256).gated(tier1), ewma_bank);
        let quiet = hash_stream_id("quiet");
        let noisy = hash_stream_id("noisy");
        for i in 0..20u64 {
            let spike = if i == 12 { 90.0 } else { 5.0 };
            service
                .enqueue(SignalContext::new(i, quiet, Symbol::new(0), 5.0))
                .unwrap();
            service
                .enqueue(SignalContext::new(i, noisy, Symbol::new(0), spike))
                .unwrap();
        }
        let sink = Collect::default();
        let summary = service.drain(&sink);
        assert_eq!(summary.escalated, 1, "only the spiking stream escalates");
        let events = sink.0.lock().unwrap();
        assert!(
            events
                .iter()
                .filter(|e| e.stream_hash == quiet)
                .all(|e| e.tier == Tier::Gate),
            "quiet stream never reaches tier 2"
        );
        assert!(
            events
                .iter()
                .any(|e| e.stream_hash == noisy && e.tier == Tier::Model),
            "escalated stream gets tier-2 verdicts"
        );
        // The escalating event itself is tier 2's first event.
        let first_model_seq = events
            .iter()
            .filter(|e| e.stream_hash == noisy && e.tier == Tier::Model)
            .map(|e| e.seq)
            .min()
            .unwrap();
        let escalation_seq = events
            .iter()
            .filter(|e| e.stream_hash == noisy && e.tier == Tier::Gate)
            .map(|e| e.seq)
            .max()
            .unwrap();
        assert_eq!(
            first_model_seq,
            escalation_seq + 3,
            "tier-2 Ewma warmup (3) after escalation"
        );
        assert_eq!(service.stream_count(), 2);
    }

    #[test]
    fn drain_summary_is_stable_across_repeat_drains() {
        let service = IngestService::new(ServeConfig::new(2, 16), ewma_bank);
        let s = hash_stream_id("idle");
        service
            .enqueue(SignalContext::new(0, s, Symbol::new(0), 1.0))
            .unwrap();
        service.drain(&NullSink);
        let empty = service.drain(&NullSink);
        assert_eq!(empty, DrainSummary::default(), "empty drain is a no-op");
    }

    #[test]
    fn shedding_shard_rejects_and_ladder_recovers_as_pressure_drains() {
        let service = IngestService::with_guard(
            ServeConfig::new(1, 10).gated(Tier1Config::default()),
            GuardConfig::default(),
            ewma_bank,
        )
        .unwrap();
        let s = hash_stream_id("hot");
        // 9/10 queue fill ≥ shed_at (0.9): the first drain cycle jumps
        // the ladder straight to Shedding.
        for i in 0..9u64 {
            service
                .enqueue(SignalContext::new(i, s, Symbol::new(0), 1.0))
                .unwrap();
        }
        service.drain(&NullSink);
        assert_eq!(service.guard_levels(), vec![DegradationLevel::Shedding]);
        let err = service
            .enqueue(SignalContext::new(9, s, Symbol::new(0), 1.0))
            .unwrap_err();
        assert_eq!(err, RejectReason::Shedding { shard: 0 });
        assert_eq!(
            err.to_string(),
            "shard 0 shedding load (overload protection)"
        );
        let stats = service.guard_stats().unwrap();
        assert_eq!(stats.shards[0].shed.load(Ordering::Relaxed), 1);
        // Calm cycles walk the ladder back down one rung per
        // cool_cycles (2): 3 rungs → 6 empty drains to reach Full.
        for _ in 0..6 {
            service.drain(&NullSink);
        }
        assert_eq!(service.guard_levels(), vec![DegradationLevel::Full]);
        assert!(service
            .enqueue(SignalContext::new(9, s, Symbol::new(0), 1.0))
            .is_ok());
        let transitions = service.guard_transitions();
        assert_eq!(
            transitions.len(),
            4,
            "Full→Shedding plus three cooldown rungs"
        );
        assert_eq!(transitions[0].1.to, DegradationLevel::Shedding);
        assert_eq!(transitions[3].1.to, DegradationLevel::Full);
    }

    #[test]
    fn watchdog_degrades_a_stuck_shard_to_tier1() {
        use detdiv_guard::TransitionCause;
        let guard = GuardConfig {
            drain_deadline: Some(std::time::Duration::ZERO),
            ..GuardConfig::default()
        };
        let service = IngestService::with_guard(
            ServeConfig::new(1, 64).gated(Tier1Config::default()),
            guard,
            ewma_bank,
        )
        .unwrap();
        let s = hash_stream_id("slow");
        service
            .enqueue(SignalContext::new(0, s, Symbol::new(0), 1.0))
            .unwrap();
        service.drain(&NullSink);
        assert_eq!(service.guard_levels(), vec![DegradationLevel::Tier1Only]);
        let transitions = service.guard_transitions();
        assert_eq!(transitions.len(), 1);
        assert_eq!(transitions[0].1.cause, TransitionCause::Watchdog);
        let stats = service.guard_stats().unwrap();
        assert_eq!(stats.shards[0].watchdog_trips.load(Ordering::Relaxed), 1);
    }

    struct Boom;

    impl StreamDetector for Boom {
        fn name(&self) -> &str {
            "boom"
        }
        fn warmup_len(&self) -> usize {
            0
        }
        fn update(&mut self, _ctx: &SignalContext) -> Option<DetectionResult> {
            panic!("boom")
        }
        fn reset(&mut self) {}
    }

    #[test]
    fn breaker_opens_on_tier2_failure_and_gate_verdicts_stand_in() {
        use detdiv_guard::BreakerConfig;
        let guard = GuardConfig {
            breaker: BreakerConfig {
                failure_threshold: 1,
                open_cycles: 100,
            },
            ..GuardConfig::default()
        };
        let tier1 = Tier1Config {
            alpha: 0.3,
            warmup: 2,
            escalate_score: 0.5,
        };
        let service =
            IngestService::with_guard(ServeConfig::new(1, 64).gated(tier1), guard, || {
                vec![Box::new(Boom) as Box<dyn StreamDetector>]
            })
            .unwrap();
        let a = hash_stream_id("first");
        let b = hash_stream_id("second");
        // Stream `a` escalates at seq 3; its tier-2 push panics, which
        // trips the breaker (threshold 1) mid-drain.
        for (i, v) in [5.0, 5.0, 5.0, 90.0, 5.0].iter().enumerate() {
            service
                .enqueue(SignalContext::new(i as u64, a, Symbol::new(0), *v))
                .unwrap();
        }
        // Stream `b` tries to escalate after the breaker opened.
        for (i, v) in [5.0, 5.0, 5.0, 90.0].iter().enumerate() {
            service
                .enqueue(SignalContext::new(i as u64, b, Symbol::new(0), *v))
                .unwrap();
        }
        let sink = Collect::default();
        service.drain(&sink);
        let stats = service.guard_stats().unwrap();
        assert_eq!(stats.shards[0].breaker_opens.load(Ordering::Relaxed), 1);
        let events = sink.0.lock().unwrap();
        let a4 = events
            .iter()
            .find(|e| e.stream_hash == a && e.seq == 4)
            .expect("escalated stream still gets a verdict");
        assert_eq!(a4.tier, Tier::Gate);
        assert_eq!(a4.result.reason, REASON_BREAKER_FALLBACK);
        let b3 = events
            .iter()
            .find(|e| e.stream_hash == b && e.seq == 3)
            .expect("deferred escalation still emits the gate verdict");
        assert_eq!(b3.result.reason, REASON_ESCALATION_DEFERRED_BREAKER);
        assert!(
            events.iter().all(|e| e.tier == Tier::Gate),
            "no tier-2 verdict survives the panicking bank"
        );
    }

    #[test]
    fn hibernation_spills_idle_streams_and_rehydrates_transparently() {
        let dir = std::env::temp_dir().join(format!(
            "detdiv-guard-hibernate-{}-{}",
            std::process::id(),
            hash_stream_id("hibernate-test")
        ));
        let guard = GuardConfig {
            // 1 shard → shard budget 200 bytes; four resident gates
            // (4 × 64 = 256) overflow it by one stream.
            budget_bytes: Some(200),
            spill_dir: Some(dir.clone()),
            ..GuardConfig::default()
        };
        let tier1 = Tier1Config {
            alpha: 0.3,
            warmup: 2,
            escalate_score: 0.99,
        };
        let feed = |service: &IngestService, sink: &Collect| {
            let a = hash_stream_id("idle-a");
            // Cycle 1: only `a` is active. Varied values keep the gate's
            // variance nonzero so the cycle-3 event scores finitely
            // (below escalate_score) instead of pinning to 1.0.
            for (i, v) in [5.0, 6.0, 5.5].iter().enumerate() {
                service
                    .enqueue(SignalContext::new(i as u64, a, Symbol::new(0), *v))
                    .unwrap();
            }
            service.drain(sink);
            // Cycle 2: three new streams push the shard over budget;
            // `a` (least recently touched) is the spill candidate.
            for name in ["busy-b", "busy-c", "busy-d"] {
                let h = hash_stream_id(name);
                for i in 0..3u64 {
                    service
                        .enqueue(SignalContext::new(i, h, Symbol::new(0), 7.0))
                        .unwrap();
                }
            }
            service.drain(sink);
            // Cycle 3: `a` comes back; a guarded service must rehydrate
            // it with its gate state intact.
            service
                .enqueue(SignalContext::new(3, a, Symbol::new(0), 6.0))
                .unwrap();
            service.drain(sink);
            a
        };
        let guarded =
            IngestService::with_guard(ServeConfig::new(1, 64).gated(tier1), guard, ewma_bank)
                .unwrap();
        let sink = Collect::default();
        let a = feed(&guarded, &sink);
        let stats = guarded.guard_stats().unwrap();
        // Cycle 2 spills `a`; cycle 3 rehydrates it and — over budget
        // again — spills the next least-recently-touched stream.
        assert_eq!(stats.shards[0].hibernated.load(Ordering::Relaxed), 2);
        assert_eq!(stats.shards[0].rehydrated.load(Ordering::Relaxed), 1);
        // Control: the same feed without a guard. Hibernation must not
        // change a single verdict.
        let control = IngestService::new(ServeConfig::new(1, 64).gated(tier1), ewma_bank);
        let control_sink = Collect::default();
        feed(&control, &control_sink);
        let fp = |events: &[VerdictEvent]| -> Vec<(u64, u64, Tier, u64, &'static str)> {
            events
                .iter()
                .filter(|e| e.stream_hash == a)
                .map(|e| {
                    (
                        e.stream_hash,
                        e.seq,
                        e.tier,
                        e.result.score.to_bits(),
                        e.result.reason,
                    )
                })
                .collect()
        };
        assert_eq!(
            fp(&sink.0.lock().unwrap()),
            fp(&control_sink.0.lock().unwrap()),
            "rehydrated stream's verdicts are bit-identical to the unguarded control"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Crash-safe shard-state snapshots.
//!
//! A snapshot is a checksummed-line file in the [`detdiv_resil`]
//! journal wire format (`<fnv1a-hex-16> <payload>`), written atomically
//! via [`AtomicFile`] so a crash mid-write can never clobber the
//! previous good snapshot:
//!
//! ```text
//! serve-snapshot v2 shards=4 tiering=gate
//! stream 00f3ab… esc=1 t1=<hex|-> slots=2 h:<hex|-> d:-
//! …
//! queued <seq> <hash> <symbol> <value-bits>     (all fixed-width hex)
//! …
//! end streams=117 queued=3
//! ```
//!
//! Per stream: the escalation flag, the tier-1 gate's serialized state,
//! and each tier-2 slot's degraded flag + detector state
//! ([`detdiv_stream::SlotState`]). Hibernated streams (spilled by the
//! guard's cold-stream hibernation) are included from their segment
//! records, so a snapshot taken under memory pressure still captures
//! every stream. Recovery is strictly best-effort and never fatal: a
//! missing file, torn tail (no footer), checksum mismatch, count
//! mismatch, version or tiering drift all yield
//! [`RecoverOutcome::Discarded`] with a reason — the service simply
//! starts cold. A stream whose bank shape no longer matches restarts
//! from warmup (counted in `skipped`), never resumes wrong state.
//!
//! Events that were queued but not yet drained at snapshot time are
//! captured as `queued` residue lines (shard order, FIFO within a
//! shard) and re-enqueued by recovery, so snapshotting no longer
//! requires the caller to drain first for a clean cut.

use std::path::Path;
use std::sync::atomic::Ordering;
use std::time::Instant;

use detdiv_resil::{checksum_line, AtomicFile, Journal};
use detdiv_sequence::Symbol;
use detdiv_stream::{Ewma, SignalContext, SlotState, StreamDetector};

use crate::config::{Tier1Config, Tiering};
use crate::service::{IngestService, Shard, Tier1};

/// What a snapshot wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Streams captured (resident + hibernated).
    pub streams: u64,
    /// Queued-but-undrained events captured as residue lines.
    pub queued: u64,
    /// File size in bytes.
    pub bytes: u64,
}

/// What recovery did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoverOutcome {
    /// The snapshot was applied.
    Recovered {
        /// Streams rebuilt.
        streams: u64,
        /// Streams whose tier-2 bank shape no longer matched the
        /// factory and therefore restart from warmup.
        skipped: u64,
    },
    /// The snapshot was unusable and ignored; the service starts cold.
    Discarded {
        /// Why (missing file, torn tail, checksum/count mismatch,
        /// version or tiering drift).
        reason: String,
    },
}

fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok())
        .collect()
}

fn opt_hex(state: &Option<Vec<u8>>) -> String {
    match state {
        Some(bytes) => to_hex(bytes),
        None => "-".to_owned(),
    }
}

fn parse_opt_hex(token: &str) -> Option<Option<Vec<u8>>> {
    if token == "-" {
        Some(None)
    } else {
        from_hex(token).map(Some)
    }
}

fn tiering_token(tiering: &Tiering) -> &'static str {
    match tiering {
        Tiering::Full => "full",
        Tiering::Gated(_) => "gate",
    }
}

pub(crate) struct ParsedStream {
    pub(crate) hash: u64,
    pub(crate) escalated: bool,
    pub(crate) tier1_state: Option<Vec<u8>>,
    pub(crate) slots: Vec<SlotState>,
}

/// Renders one stream's serialized state as a `stream …` line — the
/// format shared by snapshot files and the guard's hibernation
/// segments.
pub(crate) fn render_stream_line(hash: u64, tier1: Option<&Tier1>, slots: &[SlotState]) -> String {
    let (escalated, tier1_state) = match tier1 {
        Some(t1) => (t1.escalated, t1.gate.state_bytes()),
        // Full tiering: every stream feeds the bank directly.
        None => (true, None),
    };
    let mut line = format!(
        "stream {hash:016x} esc={} t1={} slots={}",
        u8::from(escalated),
        opt_hex(&tier1_state),
        slots.len()
    );
    for slot in slots {
        line.push(' ');
        line.push(if slot.degraded { 'd' } else { 'h' });
        line.push(':');
        line.push_str(&opt_hex(&slot.state));
    }
    line
}

/// Applies a parsed stream line to a shard: rebuilds the tier-1 gate
/// (gated tiering only) and restores the tier-2 slots. Returns `false`
/// when the bank shape no longer matched and the stream restarts from
/// warmup instead of resuming wrong state.
pub(crate) fn apply_parsed_stream(
    shard: &mut Shard,
    p: &ParsedStream,
    tier1_cfg: Option<Tier1Config>,
) -> bool {
    if let Some(cfg) = tier1_cfg {
        let mut gate = Ewma::new(cfg.alpha, cfg.warmup);
        if let Some(bytes) = &p.tier1_state {
            // Rejected bytes leave the gate reset: cold start.
            let _ = gate.restore_state(bytes);
        }
        shard.tier1.insert(
            p.hash,
            Tier1 {
                gate,
                escalated: p.escalated,
            },
        );
    }
    p.slots.is_empty() || shard.engine.restore_stream(p.hash, &p.slots)
}

pub(crate) fn parse_stream_line(line: &str) -> Option<ParsedStream> {
    let mut tokens = line.split_whitespace();
    if tokens.next()? != "stream" {
        return None;
    }
    let hash = u64::from_str_radix(tokens.next()?, 16).ok()?;
    let escalated = match tokens.next()?.strip_prefix("esc=")? {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    let tier1_state = parse_opt_hex(tokens.next()?.strip_prefix("t1=")?)?;
    let slot_count: usize = tokens.next()?.strip_prefix("slots=")?.parse().ok()?;
    let mut slots = Vec::with_capacity(slot_count);
    for _ in 0..slot_count {
        let token = tokens.next()?;
        let (flag, hex) = token.split_once(':')?;
        let degraded = match flag {
            "d" => true,
            "h" => false,
            _ => return None,
        };
        slots.push(SlotState {
            degraded,
            state: parse_opt_hex(hex)?,
        });
    }
    if tokens.next().is_some() {
        return None; // trailing garbage: version drift, discard
    }
    Some(ParsedStream {
        hash,
        escalated,
        tier1_state,
        slots,
    })
}

/// Parses the `end streams=N queued=M` footer.
fn parse_footer(line: &str) -> Option<(usize, usize)> {
    let rest = line.strip_prefix("end streams=")?;
    let (streams, queued) = rest.split_once(" queued=")?;
    Some((streams.parse().ok()?, queued.parse().ok()?))
}

/// Parses a `queued <seq> <hash> <symbol> <value-bits>` residue line
/// back into the event it captured.
fn parse_queued_line(line: &str) -> Option<SignalContext> {
    let mut tokens = line.split_whitespace();
    if tokens.next()? != "queued" {
        return None;
    }
    let seq = u64::from_str_radix(tokens.next()?, 16).ok()?;
    let hash = u64::from_str_radix(tokens.next()?, 16).ok()?;
    let symbol = u32::from_str_radix(tokens.next()?, 16).ok()?;
    let bits = u64::from_str_radix(tokens.next()?, 16).ok()?;
    if tokens.next().is_some() {
        return None; // trailing garbage: version drift, discard
    }
    Some(SignalContext::new(
        seq,
        hash,
        Symbol::new(symbol),
        f64::from_bits(bits),
    ))
}

impl IngestService {
    /// Writes a snapshot of every shard's detector state — plus any
    /// queued-but-undrained events as residue lines — to `path`,
    /// atomically (write-temp + rename: a crash mid-snapshot leaves
    /// any previous snapshot intact).
    ///
    /// Shards are locked one at a time in index order; producers may
    /// keep enqueueing concurrently, in which case an event enqueued
    /// during the walk may or may not make the cut (it is never
    /// half-captured). Hibernated streams are read from their segment
    /// records, so they survive the snapshot like resident ones.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the atomic write.
    pub fn snapshot(&self, path: impl AsRef<Path>) -> std::io::Result<SnapshotStats> {
        let config = *self.config();
        let mut body = String::new();
        let mut residue = String::new();
        let mut streams = 0u64;
        let mut queued = 0u64;
        for index in 0..config.shards {
            let mut shard = self.shard(index);
            let shard = &mut *shard;
            let hashes: Vec<u64> = match config.tiering {
                Tiering::Full => shard.engine.stream_ids(),
                Tiering::Gated(_) => {
                    let mut keys: Vec<u64> = shard.tier1.keys().copied().collect();
                    keys.sort_unstable();
                    keys
                }
            };
            // Resident streams and hibernated streams are disjoint (a
            // spill removes the resident entry); merge them sorted by
            // hash so the file layout is deterministic.
            let mut lines: Vec<(u64, String)> = Vec::with_capacity(hashes.len());
            for hash in hashes {
                let slots = shard.engine.snapshot_stream(hash).unwrap_or_default();
                lines.push((
                    hash,
                    render_stream_line(hash, shard.tier1.get(&hash), &slots),
                ));
            }
            if let Some(store) = shard.guard.as_mut().and_then(|g| g.store.as_mut()) {
                for hash in store.hashes() {
                    // The spilled payload already is a stream line; a
                    // corrupt record is skipped (that stream restarts
                    // cold after recovery), never fatal.
                    if let Ok(Some(line)) = store.peek(hash) {
                        lines.push((hash, line));
                    }
                }
                lines.sort_unstable_by_key(|(hash, _)| *hash);
            }
            for (_, line) in &lines {
                body.push_str(&checksum_line(line));
                body.push('\n');
                streams += 1;
            }
            for (ctx, _) in &shard.queue {
                let line = format!(
                    "queued {:016x} {:016x} {:08x} {:016x}",
                    ctx.seq,
                    ctx.stream_id_hash,
                    ctx.symbol.id(),
                    ctx.value.to_bits()
                );
                residue.push_str(&checksum_line(&line));
                residue.push('\n');
                queued += 1;
            }
        }
        let header = format!(
            "serve-snapshot v2 shards={} tiering={}",
            config.shards,
            tiering_token(&config.tiering)
        );
        let mut content = String::with_capacity(body.len() + residue.len() + 128);
        content.push_str(&checksum_line(&header));
        content.push('\n');
        content.push_str(&body);
        content.push_str(&residue);
        content.push_str(&checksum_line(&format!(
            "end streams={streams} queued={queued}"
        )));
        content.push('\n');
        let bytes = content.len() as u64;
        AtomicFile::write(path.as_ref(), content)?;
        self.stats().snapshots.fetch_add(1, Ordering::Relaxed);
        Ok(SnapshotStats {
            streams,
            queued,
            bytes,
        })
    }

    /// Rebuilds detector state from a snapshot written by
    /// [`snapshot`](IngestService::snapshot).
    ///
    /// Never fatal: any defect in the file — missing, torn tail,
    /// checksum failure, count mismatch, version/shape drift — returns
    /// [`RecoverOutcome::Discarded`] and leaves the service exactly as
    /// it was. Nothing is applied until the whole file has parsed.
    pub fn recover(&self, path: impl AsRef<Path>) -> RecoverOutcome {
        let config = *self.config();
        let discard = |reason: String| RecoverOutcome::Discarded { reason };
        if !path.as_ref().exists() {
            return discard("snapshot file missing".into());
        }
        let lines = match Journal::load(&path) {
            Ok(lines) => lines,
            Err(e) => return discard(format!("unreadable snapshot: {e}")),
        };
        let Some(header) = lines.first() else {
            return discard("empty snapshot".into());
        };
        let expected_header = format!(
            "serve-snapshot v2 shards={} tiering={}",
            config.shards,
            tiering_token(&config.tiering)
        );
        if *header != expected_header {
            return discard(format!(
                "header mismatch (found {header:?}, want {expected_header:?})"
            ));
        }
        let Some(footer) = lines.last().filter(|_| lines.len() >= 2) else {
            return discard("missing footer".into());
        };
        let Some((stream_count, queued_count)) = parse_footer(footer) else {
            return discard("missing footer (torn tail discarded)".into());
        };
        let body = &lines[1..lines.len() - 1];
        if body.len() != stream_count + queued_count {
            return discard(format!(
                "line count mismatch (footer says {} streams + {} queued, found {})",
                stream_count,
                queued_count,
                body.len()
            ));
        }
        // Parse everything before applying anything: a malformed line
        // discards the snapshot, never half-applies it.
        let mut parsed = Vec::with_capacity(stream_count);
        let mut residue = Vec::with_capacity(queued_count);
        for line in body {
            if line.starts_with("stream ") {
                match parse_stream_line(line) {
                    Some(p) => parsed.push(p),
                    None => return discard(format!("malformed stream line: {line:?}")),
                }
            } else {
                match parse_queued_line(line) {
                    Some(ctx) => residue.push(ctx),
                    None => return discard(format!("malformed queued line: {line:?}")),
                }
            }
        }
        if parsed.len() != stream_count || residue.len() != queued_count {
            return discard(format!(
                "kind count mismatch (footer says {} streams + {} queued, found {} + {})",
                stream_count,
                queued_count,
                parsed.len(),
                residue.len()
            ));
        }
        let tier1_cfg = match config.tiering {
            Tiering::Gated(cfg) => Some(cfg),
            Tiering::Full => None,
        };
        let mut streams = 0u64;
        let mut skipped = 0u64;
        for p in parsed {
            let index = self.shard_of(p.hash);
            let mut shard = self.shard(index);
            if !apply_parsed_stream(&mut shard, &p, tier1_cfg) {
                // Bank shape drifted since the snapshot: the stream
                // restarts from warmup instead of resuming wrong state.
                skipped += 1;
            }
            streams += 1;
        }
        // Re-enqueue the queued residue in file order (shard order, FIFO
        // within a shard — exactly the order a post-snapshot drain would
        // have processed it). Latency clocks restart at recovery time.
        for ctx in residue {
            let index = self.shard_of(ctx.stream_id_hash);
            let mut shard = self.shard(index);
            shard.queue.push_back((ctx, Instant::now()));
            let depth = shard.queue.len() as u64;
            drop(shard);
            self.stats().shards[index]
                .depth
                .store(depth, Ordering::Relaxed);
        }
        for index in 0..config.shards {
            let shard = self.shard(index);
            let resident = match config.tiering {
                Tiering::Full => shard.engine.stream_count(),
                Tiering::Gated(_) => shard.tier1.len(),
            };
            self.stats().shards[index]
                .streams
                .store(resident as u64, Ordering::Relaxed);
        }
        self.stats()
            .recovered_streams
            .fetch_add(streams, Ordering::Relaxed);
        RecoverOutcome::Recovered { streams, skipped }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrips_and_rejects_odd_lengths() {
        assert_eq!(to_hex(&[0x00, 0xff, 0x1a]), "00ff1a");
        assert_eq!(from_hex("00ff1a"), Some(vec![0x00, 0xff, 0x1a]));
        assert_eq!(from_hex(""), Some(Vec::new()));
        assert!(from_hex("abc").is_none());
        assert!(from_hex("zz").is_none());
    }

    #[test]
    fn stream_lines_roundtrip() {
        let line = "stream 00000000deadbeef esc=1 t1=0a0b slots=2 h:ff d:-";
        let p = parse_stream_line(line).expect("parses");
        assert_eq!(p.hash, 0xdead_beef);
        assert!(p.escalated);
        assert_eq!(p.tier1_state, Some(vec![0x0a, 0x0b]));
        assert_eq!(
            p.slots,
            vec![
                SlotState {
                    degraded: false,
                    state: Some(vec![0xff])
                },
                SlotState {
                    degraded: true,
                    state: None
                }
            ]
        );
        // Wrong slot counts and trailing garbage are version drift.
        assert!(parse_stream_line("stream 1 esc=1 t1=- slots=1").is_none());
        assert!(parse_stream_line("stream 1 esc=1 t1=- slots=0 h:-").is_none());
        assert!(parse_stream_line("stream 1 esc=2 t1=- slots=0").is_none());
    }
}

//! Guard wiring: per-shard overload-protection state and the verdict
//! reason labels the degraded paths emit.
//!
//! The policy machinery itself (pressure model, ladder, breaker,
//! hibernation) lives in `detdiv-guard`; this module holds the
//! service-side state that attaches it to a shard and the runtime
//! shared across shards. All guard decisions happen inside
//! `drain_shard` under the shard lock, so none of this needs its own
//! synchronization.

use std::collections::HashMap;
use std::sync::Arc;

use detdiv_guard::introspect::GuardStats;
use detdiv_guard::{Breaker, GuardConfig, HibernationStore, Ladder, LadderTransition};

/// Reason label on a gate verdict whose escalation was deferred because
/// the degradation ladder is above `Full`.
pub const REASON_ESCALATION_DEFERRED: &str = "escalation-deferred";

/// Reason label on a gate verdict whose escalation was deferred because
/// the tier-2 circuit breaker is open.
pub const REASON_ESCALATION_DEFERRED_BREAKER: &str = "escalation-deferred-breaker";

/// Reason label on the gate-fallback verdict an escalated stream
/// receives while the ladder is at `Tier1Only` or worse.
pub const REASON_TIER1_ONLY: &str = "degraded-tier1-only";

/// Reason label on the gate-fallback verdict an escalated stream
/// receives while the circuit breaker is open.
pub const REASON_BREAKER_FALLBACK: &str = "breaker-open-gate-fallback";

/// One guard transition buffered during a drain cycle, flushed to the
/// flight recorder (and the introspection counters) at cycle end.
pub(crate) struct GuardEvent {
    pub(crate) cycle: u64,
    pub(crate) kind: &'static str,
    pub(crate) from: &'static str,
    pub(crate) to: &'static str,
    pub(crate) stream_hash: u64,
}

/// Guard state owned by one shard, mutated only under the shard lock.
pub(crate) struct GuardShard {
    pub(crate) ladder: Ladder,
    pub(crate) breaker: Breaker,
    pub(crate) store: Option<HibernationStore>,
    /// Stream hash → drain cycle of its last event (LRU order for the
    /// hibernation pass).
    pub(crate) last_touch: HashMap<u64, u64>,
    /// Full ladder-transition history (the determinism suite compares
    /// these across worker widths).
    pub(crate) transitions: Vec<LadderTransition>,
    /// Events buffered this cycle, drained at cycle end.
    pub(crate) events: Vec<GuardEvent>,
    /// Per-shard monotonic flight-record counter.
    pub(crate) seq: u64,
    /// Resident-byte estimate after the previous cycle's hibernation
    /// pass (feeds the next cycle's pressure sample).
    pub(crate) resident_bytes: u64,
    /// Whether the previous drain cycle breached its deadline.
    pub(crate) deadline_breached: bool,
}

impl GuardShard {
    pub(crate) fn new(config: &GuardConfig, store: Option<HibernationStore>) -> GuardShard {
        GuardShard {
            ladder: Ladder::new(config.cool_cycles),
            breaker: Breaker::new(config.breaker),
            store,
            last_touch: HashMap::new(),
            transitions: Vec::new(),
            events: Vec::new(),
            seq: 0,
            resident_bytes: 0,
            deadline_breached: false,
        }
    }

    pub(crate) fn push_event(
        &mut self,
        kind: &'static str,
        from: &'static str,
        to: &'static str,
        stream_hash: u64,
    ) {
        self.events.push(GuardEvent {
            cycle: self.ladder.cycle(),
            kind,
            from,
            to,
            stream_hash,
        });
    }
}

/// Guard configuration and counters shared by every shard of one
/// service.
pub(crate) struct GuardRuntime {
    pub(crate) config: GuardConfig,
    pub(crate) stats: Arc<GuardStats>,
    /// Resident-byte estimate for one gated (tier-1-only) stream.
    pub(crate) gate_cost: u64,
    /// Resident-byte estimate for one escalated stream's tier-2 bank.
    pub(crate) bank_cost: u64,
}

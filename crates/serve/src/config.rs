//! Service shape: shard count, queue bounds, and detection tiering.

/// Tier-1 gate parameters: a cheap per-stream EWMA band that decides
/// which streams earn a full (tier-2) detector bank.
///
/// The gate reuses [`detdiv_stream::Ewma`] verbatim — same squashed
/// z-score response, same warmup semantics — so its verdicts obey the
/// workspace-wide score contract (`[0, 1]`, bit-deterministic replay).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tier1Config {
    /// EWMA smoothing factor in `(0, 1]`.
    pub alpha: f64,
    /// Events consumed silently before the gate's first verdict.
    pub warmup: usize,
    /// Gate score at or above which the stream escalates to tier 2.
    /// The EWMA squashes a z-score `z` to `(z/3)² / (1 + (z/3)²)`, so
    /// the default `0.5` corresponds to a 3σ excursion.
    pub escalate_score: f64,
}

impl Default for Tier1Config {
    fn default() -> Tier1Config {
        Tier1Config {
            alpha: 0.3,
            warmup: 8,
            escalate_score: 0.5,
        }
    }
}

/// How events reach the detector banks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tiering {
    /// Every event feeds the full bank directly. This is the
    /// differential-testing mode: with one shard and one worker the
    /// service's per-stream verdict sequences are byte-identical to
    /// [`detdiv_stream::StreamEngine`] fed alone.
    Full,
    /// A cheap always-on tier-1 gate fronts the expensive bank: each
    /// stream is scored by an EWMA band until it escalates, and only
    /// escalated streams get (and keep) a tier-2 bank. This is what
    /// makes millions of mostly-quiet streams affordable in one
    /// process.
    Gated(Tier1Config),
}

/// Shape of an [`crate::IngestService`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Number of shards; streams are assigned by
    /// `stream_id_hash % shards`.
    pub shards: usize,
    /// Per-shard ingestion queue bound. A full queue rejects — the
    /// service never buffers unboundedly.
    pub queue_capacity: usize,
    /// Detection tiering.
    pub tiering: Tiering,
}

impl ServeConfig {
    /// A full-tiering config with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `queue_capacity` is zero.
    pub fn new(shards: usize, queue_capacity: usize) -> ServeConfig {
        assert!(shards > 0, "at least one shard");
        assert!(queue_capacity > 0, "queue capacity must be positive");
        ServeConfig {
            shards,
            queue_capacity,
            tiering: Tiering::Full,
        }
    }

    /// Switches the config to gated tiering.
    pub fn gated(mut self, tier1: Tier1Config) -> ServeConfig {
        self.tiering = Tiering::Gated(tier1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_gate_escalates_at_three_sigma() {
        let t = Tier1Config::default();
        // squash(3/3) = 1/2: the documented 3σ ⇔ 0.5 correspondence.
        assert_eq!(t.escalate_score, 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_refused() {
        let _ = ServeConfig::new(0, 8);
    }

    #[test]
    #[should_panic(expected = "queue capacity")]
    fn zero_capacity_refused() {
        let _ = ServeConfig::new(1, 0);
    }
}

//! Service ↔ engine differential suite.
//!
//! The ingest service adds sharding, queues, and a worker pool on top
//! of [`StreamEngine`] — none of which may change a single verdict
//! bit. The pinned property: for ANY interleaving of K streams pushed
//! through an [`IngestService`] (full tiering, one shard, backpressure
//! never hit), each stream's verdict sequence is byte-identical to
//! feeding that stream alone through a bare engine built from the same
//! factory. Duplicate events and hash-colliding stream ids are part of
//! the input space, and a multi-shard spot check confirms the property
//! is per-stream, not per-shard.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use detdiv_core::SequenceAnomalyDetector;
use detdiv_detectors::Stide;
use detdiv_guard::{DegradationLevel, GuardConfig};
use detdiv_sequence::{symbols, Symbol};
use detdiv_serve::{
    IngestService, RejectReason, ServeConfig, Tier1Config, VerdictEvent, VerdictSink,
};
use detdiv_stream::{Ewma, ModelAdapter, SignalContext, StreamDetector, StreamEngine};
use proptest::prelude::*;

/// A two-slot bank mixing a trained sliding-window adapter with a
/// genuinely-online detector, so the differential covers both kinds of
/// per-stream state.
fn bank_factory() -> impl Fn() -> Vec<Box<dyn StreamDetector>> + Send + Sync + Clone + 'static {
    let mut stide = Stide::new(3);
    let mut train = Vec::new();
    for _ in 0..30 {
        train.extend(symbols(&[1, 2, 3, 4]));
    }
    stide.train(&train);
    let model: Arc<dyn detdiv_core::TrainedModel> = Arc::new(stide);
    move || {
        vec![
            Box::new(ModelAdapter::new(Arc::clone(&model))) as Box<dyn StreamDetector>,
            Box::new(Ewma::new(0.2, 3)),
        ]
    }
}

/// The comparable fingerprint of one verdict: everything except the
/// wall-clock latency (the one field the determinism contract
/// excludes) and the shard index (engine feeds have no shard).
type Fingerprint = (u64, usize, u64, u64, &'static str);

fn fingerprint(event: &VerdictEvent) -> Fingerprint {
    (
        event.seq,
        event.slot,
        event.result.score.to_bits(),
        event.result.confidence.to_bits(),
        event.result.reason,
    )
}

#[derive(Default)]
struct Collect(Mutex<Vec<VerdictEvent>>);

impl VerdictSink for Collect {
    fn on_verdict(&self, event: &VerdictEvent) {
        self.0.lock().unwrap().push(*event);
    }
}

/// One interleaved feed: `(stream_hash, seq, value)` triples in
/// arrival order. Values double as symbol ids (the adapter scores the
/// symbol, the EWMA the value), so one number exercises both slots.
fn run_service(shards: usize, feed: &[(u64, u64, u32)]) -> Vec<(u64, Fingerprint)> {
    let factory = bank_factory();
    let service = IngestService::new(ServeConfig::new(shards, feed.len().max(1)), factory);
    for &(hash, seq, value) in feed {
        service
            .enqueue(SignalContext::new(
                seq,
                hash,
                Symbol::new(value),
                f64::from(value),
            ))
            .expect("capacity covers the whole feed");
    }
    let sink = Collect::default();
    let summary = service.drain(&sink);
    let events = sink.0.lock().unwrap();
    assert_eq!(summary.processed as usize, feed.len());
    assert_eq!(summary.emitted as usize, events.len());
    events
        .iter()
        .map(|e| (e.stream_hash, fingerprint(e)))
        .collect()
}

/// Reference: each stream alone through a bare engine.
fn run_engine_alone(feed: &[(u64, u64, u32)], hash: u64) -> Vec<Fingerprint> {
    let factory = bank_factory();
    let mut engine = StreamEngine::new(factory);
    let mut out = Vec::new();
    for &(h, seq, value) in feed {
        if h != hash {
            continue;
        }
        let mut buf = Vec::new();
        engine.push(
            &SignalContext::new(seq, h, Symbol::new(value), f64::from(value)),
            &mut buf,
        );
        for slot in buf {
            out.push(fingerprint(&VerdictEvent {
                shard: 0,
                stream_hash: h,
                seq,
                tier: detdiv_serve::Tier::Model,
                slot: slot.slot,
                result: slot.result,
                latency: std::time::Duration::ZERO,
            }));
        }
    }
    out
}

fn assert_differential(shards: usize, feed: &[(u64, u64, u32)]) {
    let served = run_service(shards, feed);
    let mut hashes: Vec<u64> = feed.iter().map(|&(h, _, _)| h).collect();
    hashes.sort_unstable();
    hashes.dedup();
    for hash in hashes {
        let got: Vec<Fingerprint> = served
            .iter()
            .filter(|(h, _)| *h == hash)
            .map(|(_, f)| *f)
            .collect();
        let want = run_engine_alone(feed, hash);
        assert_eq!(
            got, want,
            "stream {hash:#x}: service verdicts must be byte-identical to the bare engine"
        );
    }
}

/// Round-robin interleaving of per-stream event sequences.
fn interleave(streams: &[(u64, Vec<u32>)]) -> Vec<(u64, u64, u32)> {
    let mut feed = Vec::new();
    let longest = streams.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
    for i in 0..longest {
        for (hash, values) in streams {
            if let Some(&v) = values.get(i) {
                feed.push((*hash, i as u64, v));
            }
        }
    }
    feed
}

#[test]
fn round_robin_interleaving_matches_isolated_engines() {
    let streams: Vec<(u64, Vec<u32>)> = (0..4u64)
        .map(|s| {
            let values = (0..40u32).map(|i| (i * 7 + s as u32 * 3) % 5).collect();
            (detdiv_stream::hash_stream_id(&format!("host-{s}")), values)
        })
        .collect();
    assert_differential(1, &interleave(&streams));
}

#[test]
fn bursty_interleaving_with_duplicate_events_matches() {
    let a = detdiv_stream::hash_stream_id("bursty-a");
    let b = detdiv_stream::hash_stream_id("bursty-b");
    let mut feed = Vec::new();
    // Stream a arrives in one burst, b trickles, and two (stream, seq,
    // value) triples are duplicated outright — a duplicate is just
    // another event, routed and scored like any other, identically on
    // both sides of the differential.
    for i in 0..20u64 {
        feed.push((a, i, (i % 4) as u32 + 1));
    }
    feed.push(feed[3]);
    for i in 0..15u64 {
        feed.push((b, i, (i % 3) as u32 + 2));
    }
    feed.push(feed[25]);
    assert_differential(1, &feed);
}

#[test]
fn hash_colliding_stream_ids_stay_distinct_streams() {
    // Raw pre-hashed ids that collide modulo the shard count land on
    // the same shard but must keep fully independent detector state.
    let shards = 4u64;
    let base = 0xdead_beef_u64;
    let collide = base + shards * 41;
    assert_eq!(base % shards, collide % shards);
    let streams = vec![
        (base, (0..30u32).map(|i| i % 4 + 1).collect::<Vec<_>>()),
        (collide, (0..30u32).map(|i| (i * 3) % 5).collect()),
    ];
    assert_differential(shards as usize, &interleave(&streams));
}

#[test]
fn multi_shard_feed_matches_isolated_engines() {
    let streams: Vec<(u64, Vec<u32>)> = (0..9u64)
        .map(|s| {
            let values = (0..25u32).map(|i| (i * (s as u32 + 2)) % 6).collect();
            (detdiv_stream::hash_stream_id(&format!("node-{s}")), values)
        })
        .collect();
    assert_differential(4, &interleave(&streams));
}

/// Serializes tests that reconfigure the global worker-pool width, so
/// two width-sweeping cases never fight over the process-wide setting.
static POOL_WIDTH: Mutex<()> = Mutex::new(());

/// Unique hibernation spill directories across proptest cases.
static SPILL_SEQ: AtomicUsize = AtomicUsize::new(0);

fn spill_dir() -> std::path::PathBuf {
    let n = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "detdiv-serve-diff-guard-{}-{n}",
        std::process::id()
    ))
}

/// A guarded verdict's comparable bits: the plain [`Fingerprint`] plus
/// the tier it was emitted at (the guard demotes tiers, so the tier is
/// part of the determinism contract here).
type GuardedFingerprint = (u64, usize, u64, u64, &'static str, bool);

/// Everything observable about one guarded run that the determinism
/// contract pins: per-offer accept/shed outcomes, the ladder level of
/// every shard after every drain cycle, per-stream verdict sequences,
/// and the per-shard monotonic guard counters.
#[derive(Debug, PartialEq, Eq)]
struct GuardHistory {
    accepts: Vec<u8>,
    levels: Vec<Vec<&'static str>>,
    verdicts: BTreeMap<u64, Vec<GuardedFingerprint>>,
    counters: Vec<(u64, u64, u64, u64)>,
}

/// Runs `feed` through a guarded gated service, draining every
/// `chunk` offers, then drains to quiescence. Returns the run's
/// complete guard history.
fn run_guarded(
    shards: usize,
    queue_cap: usize,
    budget: u64,
    chunk: usize,
    feed: &[(u64, u64, u32)],
) -> GuardHistory {
    let dir = spill_dir();
    let config = ServeConfig::new(shards, queue_cap).gated(Tier1Config {
        alpha: 0.3,
        warmup: 2,
        escalate_score: 0.7,
    });
    let guard = GuardConfig {
        budget_bytes: Some(budget),
        spill_dir: Some(dir.clone()),
        ..GuardConfig::default()
    };
    let service =
        IngestService::with_guard(config, guard, bank_factory()).expect("spill dir is writable");
    let sink = Collect::default();
    let mut history = GuardHistory {
        accepts: Vec::with_capacity(feed.len()),
        levels: Vec::new(),
        verdicts: BTreeMap::new(),
        counters: Vec::new(),
    };
    let record_drain = |history: &mut GuardHistory| {
        service.drain(&sink);
        history
            .levels
            .push(service.guard_levels().iter().map(|l| l.name()).collect());
    };
    for (i, &(hash, seq, value)) in feed.iter().enumerate() {
        history.accepts.push(
            match service.enqueue(SignalContext::new(
                seq,
                hash,
                Symbol::new(value),
                f64::from(value),
            )) {
                Ok(()) => 0,
                Err(RejectReason::Shedding { .. }) => 1,
                Err(_) => 2,
            },
        );
        if (i + 1) % chunk == 0 {
            record_drain(&mut history);
        }
    }
    // Quiescence: drain until nothing is queued and every ladder has
    // cooled back to Full — recovery is part of the pinned history.
    let mut cycles = 0;
    while service.pending() > 0
        || service
            .guard_levels()
            .iter()
            .any(|l| *l != DegradationLevel::Full)
    {
        record_drain(&mut history);
        cycles += 1;
        assert!(cycles < 1000, "ladder failed to recover to Full");
    }
    for e in sink.0.lock().unwrap().iter() {
        history.verdicts.entry(e.stream_hash).or_default().push((
            e.seq,
            e.slot,
            e.result.score.to_bits(),
            e.result.confidence.to_bits(),
            e.result.reason,
            e.tier == detdiv_serve::Tier::Model,
        ));
    }
    let stats = service.guard_stats().expect("guarded service");
    for s in &stats.shards {
        history.counters.push((
            s.shed.load(Ordering::Relaxed),
            s.ladder_transitions.load(Ordering::Relaxed),
            s.hibernated.load(Ordering::Relaxed),
            s.rehydrated.load(Ordering::Relaxed),
        ));
    }
    drop(service);
    std::fs::remove_dir_all(&dir).ok();
    history
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole determinism property: one event sequence, pushed
    /// through overload (tiny queues force QueueFull drops, Shedding
    /// rungs, and guard shedding; a tiny byte budget forces hibernation
    /// and rehydration) — the complete guard history (per-offer
    /// outcomes, per-cycle ladder levels, per-stream verdict bits, and
    /// per-shard counters) must be identical at worker widths 1, 2, 4,
    /// and 8.
    #[test]
    fn guard_histories_are_identical_at_every_worker_width(
        k in 2usize..=4,
        shard_pick in 0usize..2,
        values in prop::collection::vec(0u32..5, 80..160),
        picks in prop::collection::vec(0usize..4, 80..160),
    ) {
        let shards = [1usize, 3][shard_pick];
        let ids: Vec<u64> = (0..k as u64).map(|s| 7 + s * shards as u64).collect();
        let mut cursors = vec![0u64; k];
        let mut feed = Vec::new();
        for (i, &pick) in picks.iter().enumerate() {
            let stream = pick % k;
            feed.push((ids[stream], cursors[stream], values[i % values.len()]));
            cursors[stream] += 1;
        }
        let _width = POOL_WIDTH.lock().unwrap();
        let reference = {
            detdiv_par::global().set_threads(Some(1));
            run_guarded(shards, 6, 150, 20, &feed)
        };
        for width in [2usize, 4, 8] {
            detdiv_par::global().set_threads(Some(width));
            let got = run_guarded(shards, 6, 150, 20, &feed);
            prop_assert_eq!(
                &got, &reference,
                "guard history diverged at worker width {}", width
            );
        }
        detdiv_par::global().set_threads(None);
        // The scenario really exercised the guard: something was shed
        // and something hibernated, or the case is vacuous.
        prop_assert!(reference.accepts.iter().any(|&a| a != 0), "no overload");
        prop_assert!(reference.counters.iter().any(|c| c.2 > 0), "no hibernation");
    }

    /// Hibernate → rehydrate bit-identity: with a 1-byte budget every
    /// stream spills after every cycle and rehydrates on its next
    /// event, yet per-stream verdicts must match an unguarded control
    /// service bit for bit — including across escalation (tier-2 bank
    /// state survives the round trip).
    #[test]
    fn hibernation_round_trips_are_bit_identical_to_an_unguarded_run(
        k in 2usize..=4,
        values in prop::collection::vec(0u32..5, 60..120),
        picks in prop::collection::vec(0usize..4, 60..120),
    ) {
        let ids: Vec<u64> = (0..k as u64).map(|s| 11 + s * 13).collect();
        let mut cursors = vec![0u64; k];
        let mut feed = Vec::new();
        for (i, &pick) in picks.iter().enumerate() {
            let stream = pick % k;
            feed.push((ids[stream], cursors[stream], values[i % values.len()]));
            cursors[stream] += 1;
        }
        // Queue fill stays nominal (chunk 8 against capacity 64), so
        // the ladder never leaves Full: hibernation is the ONLY guard
        // mechanism in play.
        let guarded = run_guarded(1, 64, 1, 8, &feed);
        prop_assert!(
            guarded.levels.iter().all(|cycle| cycle.iter().all(|l| *l == "full")),
            "nominal load must not move the ladder"
        );
        prop_assert!(guarded.counters[0].2 > 0, "budget 1 must force spills");
        prop_assert!(guarded.counters[0].3 > 0, "returning streams must rehydrate");

        let control = IngestService::new(
            ServeConfig::new(1, 64).gated(Tier1Config {
                alpha: 0.3,
                warmup: 2,
                escalate_score: 0.7,
            }),
            bank_factory(),
        );
        let sink = Collect::default();
        for (i, &(hash, seq, value)) in feed.iter().enumerate() {
            control
                .enqueue(SignalContext::new(seq, hash, Symbol::new(value), f64::from(value)))
                .expect("capacity covers the feed");
            if (i + 1) % 8 == 0 {
                control.drain(&sink);
            }
        }
        control.drain(&sink);
        let mut expected: BTreeMap<u64, Vec<GuardedFingerprint>> = BTreeMap::new();
        for e in sink.0.lock().unwrap().iter() {
            expected.entry(e.stream_hash).or_default().push((
                e.seq,
                e.slot,
                e.result.score.to_bits(),
                e.result.confidence.to_bits(),
                e.result.reason,
                e.tier == detdiv_serve::Tier::Model,
            ));
        }
        prop_assert_eq!(
            &guarded.verdicts, &expected,
            "hibernate→rehydrate must not perturb a single verdict bit"
        );
    }

    /// Random interleavings: per-stream event sequences of random
    /// lengths/values, shuffled into one feed by a random pick order
    /// (including duplicated picks = duplicate keys back-to-back),
    /// over 1 or 3 shards with deliberately colliding raw ids.
    #[test]
    fn random_interleavings_match_isolated_engines(
        k in 2usize..=4,
        shard_pick in 0usize..2,
        values in prop::collection::vec(0u32..5, 60..120),
        picks in prop::collection::vec(0usize..4, 60..120),
    ) {
        let shards = [1usize, 3][shard_pick];
        // Stream ids collide modulo `shards` on purpose: every stream
        // maps to shard (7 % shards).
        let ids: Vec<u64> = (0..k as u64).map(|s| 7 + s * shards as u64).collect();
        let mut cursors = vec![0u64; k];
        let mut feed = Vec::new();
        for (i, &pick) in picks.iter().enumerate() {
            let stream = pick % k;
            let value = values[i % values.len()];
            feed.push((ids[stream], cursors[stream], value));
            cursors[stream] += 1;
            if value == 0 {
                // Duplicate key: replay the exact same event.
                feed.push((ids[stream], cursors[stream] - 1, value));
            }
        }
        assert_differential(shards, &feed);
    }
}

//! Backpressure & degradation suite.
//!
//! Two service-level promises under stress:
//!
//! * **Backpressure is typed and deterministic** — a full shard queue
//!   rejects every further enqueue with the same
//!   [`RejectReason::QueueFull`], bumps the `serve/rejected` counter,
//!   and accepts again after a drain. No silent drops, no unbounded
//!   buffering.
//! * **Degradation is per-stream** — a panic inside a detector's
//!   `update` (the `stream/update` fault site) permanently degrades
//!   that one slot of that one stream; shard siblings keep serving and
//!   the blast radius is visible in `detdiv_flight::streams`.
//!
//! Fault arming and the flight streams registry are process-global, so
//! the tests that touch them serialize on a file-local mutex.

use std::sync::atomic::Ordering;
use std::sync::Mutex;

use detdiv_sequence::Symbol;
use detdiv_serve::{IngestService, NullSink, RejectReason, ServeConfig, VerdictEvent, VerdictSink};
use detdiv_stream::{hash_stream_id, DetectionResult, Ewma, SignalContext, StreamDetector};

/// Serializes tests that arm faults or reset the streams registry.
static GLOBAL_STATE: Mutex<()> = Mutex::new(());

/// A detector that panics on one value — a stand-in for any buggy
/// detector; the panic surfaces on the same `stream/update` path the
/// chaos injector targets.
#[derive(Debug)]
struct Grenade {
    trigger: f64,
}

impl StreamDetector for Grenade {
    fn name(&self) -> &str {
        "grenade"
    }

    fn warmup_len(&self) -> usize {
        0
    }

    fn update(&mut self, ctx: &SignalContext) -> Option<DetectionResult> {
        assert!(ctx.value != self.trigger, "boom");
        Some(DetectionResult::certain(0.0, "calm"))
    }

    fn reset(&mut self) {}
}

#[derive(Default)]
struct Collect(Mutex<Vec<VerdictEvent>>);

impl VerdictSink for Collect {
    fn on_verdict(&self, event: &VerdictEvent) {
        self.0.lock().unwrap().push(*event);
    }
}

#[test]
fn full_queue_rejects_deterministically_and_counts() {
    let _guard = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    let rejected_before = detdiv_obs::snapshot().counter("serve/rejected");
    let service = IngestService::new(ServeConfig::new(1, 4), || {
        vec![Box::new(Ewma::new(0.2, 3)) as Box<dyn StreamDetector>]
    });
    let s = hash_stream_id("pressured");
    for i in 0..4u64 {
        service
            .enqueue(SignalContext::new(i, s, Symbol::new(0), 1.0))
            .expect("under capacity");
    }
    // Every further enqueue gets the identical typed reason — the
    // rejection is a pure function of queue state, not of timing.
    for i in 4..7u64 {
        let err = service
            .enqueue(SignalContext::new(i, s, Symbol::new(0), 1.0))
            .unwrap_err();
        assert_eq!(
            err,
            RejectReason::QueueFull {
                shard: 0,
                capacity: 4
            }
        );
    }
    assert_eq!(
        service.stats().shards[0].rejected.load(Ordering::Relaxed),
        3
    );
    assert_eq!(
        detdiv_obs::snapshot().counter("serve/rejected") - rejected_before,
        3,
        "rejections are observable on the serve/rejected counter"
    );
    // Queue contents were untouched by the rejections; a drain frees
    // capacity and the service accepts again.
    let summary = service.drain(&NullSink);
    assert_eq!(summary.processed, 4);
    assert!(service
        .enqueue(SignalContext::new(4, s, Symbol::new(0), 1.0))
        .is_ok());
}

#[test]
fn panicking_stream_degrades_alone_while_shard_siblings_serve() {
    let _guard = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    detdiv_flight::streams::reset();
    detdiv_flight::streams::set_enabled(true);
    let degraded_before = detdiv_obs::snapshot().counter("serve/degraded");

    // One shard, so victim and sibling are shard-mates by construction.
    let service = IngestService::new(ServeConfig::new(1, 256), || {
        vec![
            Box::new(Grenade { trigger: 13.0 }) as Box<dyn StreamDetector>,
            Box::new(Ewma::new(0.2, 2)),
        ]
    });
    let victim = hash_stream_id("victim");
    let sibling = hash_stream_id("sibling");
    detdiv_flight::streams::label(victim, "victim");
    detdiv_flight::streams::label(sibling, "sibling");

    let sink = Collect::default();
    for i in 0..10u64 {
        let value = if i == 4 { 13.0 } else { 1.0 }; // grenade fires at seq 4
        service
            .enqueue(SignalContext::new(i, victim, Symbol::new(0), value))
            .unwrap();
        service
            .enqueue(SignalContext::new(i, sibling, Symbol::new(0), 1.0))
            .unwrap();
    }
    let summary = service.drain(&sink);
    assert_eq!(summary.processed, 20, "the panic consumed no events");
    assert_eq!(summary.degraded, 1, "exactly one slot degraded");
    assert_eq!(service.degraded_slots(), 1);
    assert_eq!(
        detdiv_obs::snapshot().counter("serve/degraded") - degraded_before,
        1
    );

    // Blast radius via the flight streams registry: the victim records
    // one degradation, the sibling none.
    let snaps = detdiv_flight::streams::snapshots();
    let victim_snap = snaps.iter().find(|s| s.stream_hash == victim).unwrap();
    let sibling_snap = snaps.iter().find(|s| s.stream_hash == sibling).unwrap();
    assert_eq!(victim_snap.label, "victim");
    assert_eq!(victim_snap.degraded, 1);
    assert_eq!(sibling_snap.degraded, 0);
    assert!(detdiv_flight::streams::degraded_streams() >= 1);

    // The sibling stream served every event (grenade slot warmup 0 →
    // 10 verdicts; EWMA warmup 2 → 8), and even the victim's healthy
    // EWMA slot kept serving after the grenade died.
    let events = sink.0.lock().unwrap();
    let sibling_verdicts = events.iter().filter(|e| e.stream_hash == sibling).count();
    assert_eq!(sibling_verdicts, 18);
    let victim_ewma_after: Vec<u64> = events
        .iter()
        .filter(|e| e.stream_hash == victim && e.slot == 1 && e.seq > 4)
        .map(|e| e.seq)
        .collect();
    assert_eq!(victim_ewma_after, vec![5, 6, 7, 8, 9]);
    // …while the victim's grenade slot is silent after the panic.
    assert!(!events
        .iter()
        .any(|e| e.stream_hash == victim && e.slot == 0 && e.seq >= 4));

    // Later drains keep the degradation sticky: the same trigger value
    // cannot re-panic a dead slot.
    service
        .enqueue(SignalContext::new(10, victim, Symbol::new(0), 13.0))
        .unwrap();
    service.drain(&NullSink);
    assert_eq!(service.degraded_slots(), 1);

    detdiv_flight::streams::set_enabled(false);
    detdiv_flight::streams::reset();
}

#[test]
fn chaos_armed_service_survives_and_records_blast_radius() {
    let _guard = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    detdiv_flight::streams::reset();
    detdiv_flight::streams::set_enabled(true);

    let service = IngestService::new(ServeConfig::new(4, 4096), || {
        vec![Box::new(Ewma::new(0.2, 3)) as Box<dyn StreamDetector>]
    });
    let streams: Vec<u64> = (0..16u64)
        .map(|s| hash_stream_id(&format!("chaos-{s}")))
        .collect();

    let plan = detdiv_resil::FaultPlan::parse("7:5%:panic").expect("valid spec");
    detdiv_resil::arm(plan);
    let mut processed = 0u64;
    for round in 0..6u64 {
        for seq in 0..40u64 {
            for &hash in &streams {
                service
                    .enqueue(SignalContext::new(
                        round * 40 + seq,
                        hash,
                        Symbol::new(0),
                        1.0,
                    ))
                    .expect("capacity covers a round");
            }
        }
        // Deferred shards keep their batch queued; drain until empty
        // (the hit index advances, so deferral cannot repeat forever).
        let mut spins = 0;
        loop {
            processed += service.drain(&NullSink).processed;
            if service.pending() == 0 {
                break;
            }
            spins += 1;
            assert!(spins < 64, "drains must make progress under chaos");
        }
    }
    detdiv_resil::disarm();

    // Every event was either processed or is accounted for by a
    // degraded slot having skipped it — none vanished into a crash.
    assert_eq!(processed, 6 * 40 * 16, "no events lost under chaos");
    // At a 5% panic rate over 3840 update calls, degradations are a
    // statistical certainty; the registry agrees with the engine.
    let degraded = service.degraded_slots();
    assert!(degraded >= 1, "chaos should have degraded something");
    assert_eq!(detdiv_flight::streams::degraded_streams(), degraded);
    // The service kept serving every stream even as slots died: the
    // registry shows all 16 streams received all 240 events.
    let snaps = detdiv_flight::streams::snapshots();
    assert_eq!(snaps.len(), 16);
    for snap in &snaps {
        assert_eq!(snap.events, 240, "no stream was starved by chaos");
    }

    detdiv_flight::streams::set_enabled(false);
    detdiv_flight::streams::reset();
}

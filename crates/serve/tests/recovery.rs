//! Snapshot → crash → recover battery.
//!
//! The crash model is SIGKILL-style: the process vanishes after its
//! last completed drain + snapshot, and a fresh process recovers from
//! the snapshot file alone. The pinned properties:
//!
//! 1. per-stream verdicts after recovery are bit-identical to the
//!    uninterrupted run (full and gated tiering, including mid-warmup,
//!    never-escalated, and escalated streams);
//! 2. a torn snapshot tail (partial final line, as a crash mid-write
//!    would leave) discards the snapshot with a reason — never a
//!    panic, never half-applied state;
//! 3. shape drift (different bank, shard count, or tiering) degrades
//!    to cold starts or a clean discard, explicitly counted.
//!
//! Cross-stream drain order is scheduling-dependent at worker widths
//! above one, so every comparison here is per stream — which is the
//! determinism contract's actual unit.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use detdiv_core::SequenceAnomalyDetector;
use detdiv_detectors::Stide;
use detdiv_sequence::{symbols, Symbol};
use detdiv_serve::{
    IngestService, RecoverOutcome, ServeConfig, Tier1Config, VerdictEvent, VerdictSink,
};
use detdiv_stream::{Ewma, ModelAdapter, SignalContext, StreamDetector};

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "detdiv-serve-recovery-{name}-{}",
        std::process::id()
    ));
    p
}

fn bank_factory() -> impl Fn() -> Vec<Box<dyn StreamDetector>> + Send + Sync + Clone + 'static {
    let mut stide = Stide::new(3);
    let mut train = Vec::new();
    for _ in 0..30 {
        train.extend(symbols(&[1, 2, 3, 4]));
    }
    stide.train(&train);
    let model: Arc<dyn detdiv_core::TrainedModel> = Arc::new(stide);
    move || {
        vec![
            Box::new(ModelAdapter::new(Arc::clone(&model))) as Box<dyn StreamDetector>,
            Box::new(Ewma::new(0.2, 3)),
        ]
    }
}

/// Everything comparable about a verdict except wall-clock latency.
type Fingerprint = (u64, usize, u64, bool);

#[derive(Default)]
struct Collect(Mutex<Vec<VerdictEvent>>);

impl VerdictSink for Collect {
    fn on_verdict(&self, event: &VerdictEvent) {
        self.0.lock().unwrap().push(*event);
    }
}

impl Collect {
    /// Per-stream verdict sequences (in-stream order is deterministic;
    /// cross-stream order is not compared).
    fn by_stream(&self) -> BTreeMap<u64, Vec<Fingerprint>> {
        let mut map: BTreeMap<u64, Vec<Fingerprint>> = BTreeMap::new();
        for e in self.0.lock().unwrap().iter() {
            map.entry(e.stream_hash).or_default().push((
                e.seq,
                e.slot,
                e.result.score.to_bits(),
                e.tier == detdiv_serve::Tier::Model,
            ));
        }
        map
    }

    fn total(&self) -> usize {
        self.0.lock().unwrap().len()
    }
}

/// `(stream, seq, value)` triples, round-robin across streams. Values
/// double as symbol ids and signal values.
type Feed = Vec<(u64, u64, u32)>;

/// A mixed population: varying streams, a constant stream, and a
/// constant stream that spikes at `spike_seq` (under a gated config
/// the spike escalates it deterministically: constant history means
/// zero variance, so any deviation is an infinite z-score).
fn mixed_feed(events: u64, spike_seq: u64) -> Feed {
    let mut out = Vec::new();
    for seq in 0..events {
        for s in 0..6u64 {
            let value = match s {
                3 => 3,                                // constant: never escalates
                5 if seq == spike_seq => 90,           // the escalation trigger
                5 => 2,                                // otherwise constant
                _ => ((seq * (s + 2) + s) % 5) as u32, // varying
            };
            out.push((
                detdiv_stream::hash_stream_id(&format!("rec-{s}")),
                seq,
                value,
            ));
        }
    }
    out
}

fn push_all(service: &IngestService, feed: &[(u64, u64, u32)], sink: &Collect) {
    for &(hash, seq, value) in feed {
        service
            .enqueue(SignalContext::new(
                seq,
                hash,
                Symbol::new(value),
                f64::from(value),
            ))
            .expect("capacity covers the feed");
    }
    service.drain(sink);
}

/// The core battery, shared by both tiering modes: run uninterrupted;
/// run the first half + snapshot + "crash" + recover + run the rest;
/// compare per-stream verdict sequences bit-for-bit.
fn assert_recovery_resumes(config: ServeConfig, name: &str, all: &Feed) {
    let half = all.len() / 2;

    let uninterrupted = IngestService::new(config, bank_factory());
    let reference = Collect::default();
    push_all(&uninterrupted, all, &reference);
    let expected = reference.by_stream();

    let path = temp_path(name);
    let first = IngestService::new(config, bank_factory());
    let before_crash = Collect::default();
    push_all(&first, &all[..half], &before_crash);
    let stats = first.snapshot(&path).expect("snapshot writes");
    assert_eq!(stats.streams, first.stream_count() as u64);
    drop(first); // SIGKILL-style: nothing after the snapshot survives

    let recovered = IngestService::new(config, bank_factory());
    match recovered.recover(&path) {
        RecoverOutcome::Recovered { streams, skipped } => {
            assert_eq!(streams, stats.streams);
            assert_eq!(skipped, 0);
        }
        RecoverOutcome::Discarded { reason } => panic!("snapshot discarded: {reason}"),
    }
    let after_crash = Collect::default();
    push_all(&recovered, &all[half..], &after_crash);
    assert!(after_crash.total() > 0, "the post-recovery half must emit");

    let head = before_crash.by_stream();
    let tail = after_crash.by_stream();
    for (stream, want) in &expected {
        let mut got = head.get(stream).cloned().unwrap_or_default();
        got.extend(tail.get(stream).cloned().unwrap_or_default());
        assert_eq!(
            &got, want,
            "stream {stream:#x}: crash+recover must neither re-emit, swallow, nor \
             perturb a single verdict bit"
        );
    }
    assert_eq!(
        head.len().max(tail.len()),
        expected.len(),
        "no streams invented or lost"
    );
}

#[test]
fn full_tiering_recovery_is_bit_identical() {
    assert_recovery_resumes(ServeConfig::new(4, 2048), "full", &mixed_feed(30, 10));
}

#[test]
fn gated_tiering_recovery_is_bit_identical() {
    let config = ServeConfig::new(4, 2048).gated(Tier1Config {
        alpha: 0.3,
        warmup: 4,
        escalate_score: 0.5,
    });
    // The spike lands before the crash point, so the snapshot carries
    // an escalated stream with live tier-2 state alongside gated-only
    // and mid-warmup streams.
    assert_recovery_resumes(config, "gated", &mixed_feed(30, 10));

    // Sanity: that feed really does escalate exactly one stream.
    let probe = IngestService::new(config, bank_factory());
    let sink = Collect::default();
    push_all(&probe, &mixed_feed(30, 10), &sink);
    assert_eq!(
        probe
            .stats()
            .shards
            .iter()
            .map(|s| s.escalated.load(std::sync::atomic::Ordering::Relaxed))
            .sum::<u64>(),
        1
    );
}

#[test]
fn gated_escalation_after_recovery_still_matches() {
    let config = ServeConfig::new(2, 2048).gated(Tier1Config {
        alpha: 0.3,
        warmup: 4,
        escalate_score: 0.5,
    });
    // The spike lands *after* the crash point: escalation must fire on
    // the recovered gate state (constant pre-crash history ⇒ zero
    // variance survives the snapshot).
    assert_recovery_resumes(config, "gated-late", &mixed_feed(30, 22));
}

/// Snapshot taken while queues still hold undrained events: the
/// residue must ride the snapshot and replay after recovery — not
/// vanish (the pre-v2 bug) and not double-process.
fn assert_queued_residue_survives(config: ServeConfig, name: &str) {
    let all = mixed_feed(30, 10);
    let half = all.len() / 2;
    let quarter = half + all.len() / 4;

    let uninterrupted = IngestService::new(config, bank_factory());
    let reference = Collect::default();
    push_all(&uninterrupted, &all, &reference);
    let expected = reference.by_stream();

    // First process: drain the first half, then enqueue a quarter more
    // WITHOUT draining and snapshot with the queues loaded.
    let path = temp_path(name);
    let first = IngestService::new(config, bank_factory());
    let before_crash = Collect::default();
    push_all(&first, &all[..half], &before_crash);
    for &(hash, seq, value) in &all[half..quarter] {
        first
            .enqueue(SignalContext::new(
                seq,
                hash,
                Symbol::new(value),
                f64::from(value),
            ))
            .expect("capacity covers the feed");
    }
    let stats = first.snapshot(&path).expect("snapshot writes");
    assert_eq!(
        stats.queued,
        (quarter - half) as u64,
        "the snapshot must carry every queued event"
    );
    drop(first); // the queued quarter now exists only in the snapshot

    let recovered = IngestService::new(config, bank_factory());
    match recovered.recover(&path) {
        RecoverOutcome::Recovered { streams, skipped } => {
            assert_eq!(streams, stats.streams);
            assert_eq!(skipped, 0);
        }
        RecoverOutcome::Discarded { reason } => panic!("snapshot discarded: {reason}"),
    }
    assert_eq!(
        recovered.pending() as u64,
        stats.queued,
        "recovery re-enqueues the residue"
    );
    // Drain the replayed residue, then feed the untouched tail.
    let after_crash = Collect::default();
    recovered.drain(&after_crash);
    push_all(&recovered, &all[quarter..], &after_crash);

    let head = before_crash.by_stream();
    let tail = after_crash.by_stream();
    for (stream, want) in &expected {
        let mut got = head.get(stream).cloned().unwrap_or_default();
        got.extend(tail.get(stream).cloned().unwrap_or_default());
        assert_eq!(
            &got, want,
            "stream {stream:#x}: queued residue must replay exactly once, \
             bit-identically"
        );
    }
}

#[test]
fn full_tiering_snapshot_with_loaded_queues_replays_the_residue() {
    assert_queued_residue_survives(ServeConfig::new(4, 2048), "queued-full");
}

#[test]
fn gated_tiering_snapshot_with_loaded_queues_replays_the_residue() {
    let config = ServeConfig::new(4, 2048).gated(Tier1Config {
        alpha: 0.3,
        warmup: 4,
        escalate_score: 0.5,
    });
    assert_queued_residue_survives(config, "queued-gated");
}

#[test]
fn torn_tail_snapshot_is_discarded_not_fatal() {
    use std::io::Write;
    let path = temp_path("torn");
    let service = IngestService::new(ServeConfig::new(2, 1024), bank_factory());
    let sink = Collect::default();
    push_all(&service, &mixed_feed(12, 4), &sink);
    service.snapshot(&path).expect("snapshot writes");

    // A crash mid-write leaves a partial final line: truncate the file
    // mid-footer.
    let content = std::fs::read_to_string(&path).unwrap();
    let cut = content.len() - 9;
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(&content.as_bytes()[..cut]).unwrap();
    drop(f);

    let fresh = IngestService::new(ServeConfig::new(2, 1024), bank_factory());
    match fresh.recover(&path) {
        RecoverOutcome::Discarded { reason } => {
            assert!(
                reason.contains("footer") || reason.contains("count"),
                "torn tail should read as a missing/incomplete footer, got: {reason}"
            );
        }
        RecoverOutcome::Recovered { .. } => panic!("a torn snapshot must not be applied"),
    }
    // The discard left the service untouched and serviceable.
    assert_eq!(fresh.stream_count(), 0);
    let sink = Collect::default();
    push_all(&fresh, &mixed_feed(8, 2), &sink);
    assert!(sink.total() > 0);
}

#[test]
fn corrupt_interior_line_is_discarded_not_fatal() {
    let path = temp_path("corrupt");
    let service = IngestService::new(ServeConfig::new(2, 1024), bank_factory());
    push_all(&service, &mixed_feed(12, 4), &Collect::default());
    service.snapshot(&path).expect("snapshot writes");

    // Flip one payload byte inside the second line: the journal
    // checksum catches it and the whole snapshot is refused.
    let mut bytes = std::fs::read(&path).unwrap();
    let second_line = bytes.iter().position(|&b| b == b'\n').unwrap() + 20;
    bytes[second_line] = bytes[second_line].wrapping_add(1);
    std::fs::write(&path, &bytes).unwrap();

    let fresh = IngestService::new(ServeConfig::new(2, 1024), bank_factory());
    assert!(
        matches!(fresh.recover(&path), RecoverOutcome::Discarded { .. }),
        "interior corruption must discard the snapshot"
    );
    assert_eq!(fresh.stream_count(), 0);
}

#[test]
fn missing_file_and_shape_drift_are_discarded() {
    let fresh = IngestService::new(ServeConfig::new(2, 1024), bank_factory());
    let missing = fresh.recover(temp_path("never-written"));
    assert!(matches!(missing, RecoverOutcome::Discarded { reason } if reason.contains("missing")));

    // Snapshot with 2 shards, recover into 3: header mismatch.
    let path = temp_path("drift");
    let service = IngestService::new(ServeConfig::new(2, 1024), bank_factory());
    push_all(&service, &mixed_feed(10, 4), &Collect::default());
    service.snapshot(&path).expect("snapshot writes");
    let other = IngestService::new(ServeConfig::new(3, 1024), bank_factory());
    assert!(
        matches!(other.recover(&path), RecoverOutcome::Discarded { reason } if reason.contains("header")),
        "shard-count drift must discard"
    );

    // Tiering drift likewise.
    let gated = IngestService::new(
        ServeConfig::new(2, 1024).gated(Tier1Config::default()),
        bank_factory(),
    );
    assert!(matches!(
        gated.recover(&path),
        RecoverOutcome::Discarded { .. }
    ));
}

#[test]
fn bank_shape_drift_degrades_to_cold_start_streams() {
    let path = temp_path("bank-drift");
    let service = IngestService::new(ServeConfig::new(2, 1024), bank_factory());
    push_all(&service, &mixed_feed(10, 4), &Collect::default());
    service.snapshot(&path).expect("snapshot writes");

    // Same shards + tiering, but a one-slot bank: every stream's
    // two-slot snapshot is refused and restarts cold — counted, not
    // fatal.
    let other = IngestService::new(ServeConfig::new(2, 1024), || {
        vec![Box::new(Ewma::new(0.2, 3)) as Box<dyn StreamDetector>]
    });
    match other.recover(&path) {
        RecoverOutcome::Recovered { streams, skipped } => {
            assert_eq!(streams, 6);
            assert_eq!(skipped, 6, "every stream's bank shape drifted");
        }
        RecoverOutcome::Discarded { reason } => panic!("should recover with skips: {reason}"),
    }
    // Cold-started streams warm up from scratch and serve fine.
    let sink = Collect::default();
    push_all(&other, &mixed_feed(8, 2), &sink);
    assert!(sink.total() > 0);
}

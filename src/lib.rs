//! # detdiv — the effects of algorithmic diversity on anomaly detectors
//!
//! A complete Rust reproduction of Tan & Maxion, *"The Effects of
//! Algorithmic Diversity on Anomaly Detector Performance"* (DSN 2005).
//!
//! This facade crate re-exports the workspace's public API under stable
//! module names:
//!
//! * [`sequence`] — categorical streams, n-gram databases, minimal
//!   foreign sequence (MFS) analysis;
//! * [`markov`] — Markov-chain substrate (order-k conditional models);
//! * [`hmm`] — hidden-Markov-model substrate (Baum–Welch, scaled forward);
//! * [`rules`] — RIPPER-style sequential-covering rule induction;
//! * [`nn`] — feed-forward neural-network substrate;
//! * [`synth`] — the paper's synthetic evaluation data: training streams,
//!   MFS construction and boundary-safe injection;
//! * [`detectors`] — the four diverse detectors (Stide, Markov,
//!   neural-network, Lane & Brodley) plus extensions (t-stide, LFC);
//! * [`core`] — the evaluation framework: incident spans,
//!   blind/weak/capable scoring, coverage maps, ensembles;
//! * [`cache`] — the concurrent single-flight cache of trained detector
//!   models shared across the experiment suite (disable with
//!   `DETDIV_CACHE=off`);
//! * [`trace`] — system-call trace parsing and synthesis;
//! * [`eval`] — experiment drivers reproducing every figure and analysis
//!   of the paper;
//! * [`obs`] — the zero-dependency observability layer (leveled
//!   logging via `DETDIV_LOG`, hierarchical timing spans, counters and
//!   histograms, serializable run telemetry);
//! * [`par`] — the work-stealing thread pool behind the evaluation
//!   grid's parallel fan-outs (deterministic results regardless of
//!   `DETDIV_THREADS`);
//! * [`scope`] — live runtime introspection: an embedded HTTP server
//!   exposing Prometheus-format metrics, health, snapshot and
//!   self-profile endpoints, plus a background time-series sampler
//!   (arm with `regenerate --serve HOST:PORT` or `DETDIV_SERVE`);
//! * [`serve`] — the sharded multi-stream ingest service: per-stream
//!   detector state sharded across bounded queues with typed
//!   backpressure, a cheap always-on tier-1 gate fronting the trained
//!   tier-2 bank, per-stream degradation under faults, and crash-safe
//!   shard-state snapshots with `--resume`-style recovery (drive it at
//!   scale with the `loadgen` binary);
//! * [`stream`] — the online streaming engine: a push-based
//!   [`stream::StreamDetector`] contract, sliding-window adapters that
//!   score event-by-event bit-identically to the batch path (switch the
//!   whole suite over with `regenerate --stream` or `DETDIV_STREAM=on`),
//!   and genuinely-online detectors (EWMA, CUSUM, adaptive thresholds,
//!   fading histograms).
//!
//! # Quickstart
//!
//! ```
//! use detdiv::prelude::*;
//!
//! // Synthesize a small instance of the paper's evaluation data.
//! let config = SynthesisConfig::builder()
//!     .training_len(30_000)
//!     .anomaly_sizes(2..=4)
//!     .windows(2..=6)
//!     .background_len(512)
//!     .seed(7)
//!     .build()
//!     .unwrap();
//! let corpus = Corpus::synthesize(&config).unwrap();
//! let case = corpus.case(4, 6).unwrap();
//!
//! // Train Stide and ask whether the injected minimal foreign sequence
//! // is detected: with DW (6) >= AS (4) it must be.
//! let mut stide = Stide::new(6);
//! stide.train(case.training());
//! let outcome = evaluate_case(&stide, &case).unwrap();
//! assert_eq!(outcome.classification(), Classification::Capable);
//!
//! // With DW (2) < AS (4), Stide is blind — the paper's Figure 5.
//! let mut small = Stide::new(2);
//! small.train(case.training());
//! let case2 = corpus.case(4, 2).unwrap();
//! let outcome2 = evaluate_case(&small, &case2).unwrap();
//! assert_eq!(outcome2.classification(), Classification::Blind);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::print_stdout, clippy::print_stderr)]

pub use detdiv_cache as cache;
pub use detdiv_core as core;
pub use detdiv_detectors as detectors;
pub use detdiv_eval as eval;
pub use detdiv_hmm as hmm;
pub use detdiv_markov as markov;
pub use detdiv_nn as nn;
pub use detdiv_obs as obs;
pub use detdiv_par as par;
pub use detdiv_rules as rules;
pub use detdiv_scope as scope;
pub use detdiv_sequence as sequence;
pub use detdiv_serve as serve;
pub use detdiv_stream as stream;
pub use detdiv_synth as synth;
pub use detdiv_trace as trace;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use detdiv_core::{
        evaluate_case, Classification, CoverageMap, DetectionOutcome, DiversityMatrix,
        IncidentSpan, LabeledCase, SequenceAnomalyDetector, TrainedModel,
    };
    pub use detdiv_detectors::{
        HmmDetector, LaneBrodley, MarkovDetector, NeuralDetector, RipperDetector, Stide, TStide,
    };
    pub use detdiv_eval::{coverage_map, DetectorKind, FullReport};
    pub use detdiv_sequence::{
        symbols, Alphabet, NgramCounter, NgramSet, StreamProfile, SubstringIndex, Symbol,
        DEFAULT_RARE_THRESHOLD,
    };
    pub use detdiv_serve::{IngestService, ServeConfig, Tier1Config, Tiering, VerdictSink};
    pub use detdiv_stream::{
        stream_scores, DetectionResult, ModelAdapter, SignalContext, StreamDetector, StreamEngine,
    };
    pub use detdiv_synth::{Corpus, InjectedCase, SynthesisConfig};
}

//! Local stand-in for the `rand` crate (API subset of rand 0.8).
//!
//! The build environment resolves no registry crates, so this vendored
//! crate reimplements exactly the surface the workspace uses:
//!
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`];
//! * [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64) and
//!   [`rngs::StdRng`];
//! * [`Rng::gen`] for the common scalar types;
//! * [`Rng::gen_range`] over `Range` / `RangeInclusive` of integers and
//!   floats (rejection-sampled, bias-free for integers);
//! * [`Rng::gen_bool`] and [`Rng::fill`] for completeness.
//!
//! Streams are deterministic per seed but differ from upstream rand's
//! (a different generator is used); the workspace only relies on
//! seeded determinism and uniformity, never on exact upstream streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from an RNG's raw bits
/// (the stand-in for rand's `Standard` distribution).
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A scalar type over which uniform ranges can be sampled.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Bias-free uniform draw from `[0, span)` by rejection sampling.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u64;
                (low as i128 + uniform_u64(rng, span) as i128) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                (low as i128 + uniform_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = <$t as SampleStandard>::sample(rng);
                low + unit * (high - low)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let unit = <$t as SampleStandard>::sample(rng);
                low + unit * (high - low)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from this range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (uniform over the type's domain; `[0, 1)` for floats).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the RNG from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for b in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut state).to_le_bytes();
            let n = b.len();
            b.copy_from_slice(&v[..n]);
        }
        Self::from_seed(seed)
    }

    /// Constructs the RNG from OS entropy. This offline stand-in uses
    /// the current time, which is entropy enough for test scaffolding.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED_5EED);
        Self::seed_from_u64(nanos)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast RNG: xoshiro256++ (matches rand 0.8's `SmallRng`
    /// role, not its exact stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // Never all-zero: reseed through SplitMix64 if degenerate.
            if s.iter().all(|&x| x == 0) {
                let mut state = 0xDEAD_BEEF_CAFE_F00D;
                for slot in &mut s {
                    *slot = splitmix64(&mut state);
                }
            }
            SmallRng { s }
        }
    }

    /// The "standard" RNG. This offline stand-in aliases the same
    /// xoshiro256++ core as [`SmallRng`].
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        let first: Vec<u64> = (0..4).map(|_| c.gen()).collect();
        let again: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        assert_ne!(first, again);
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&w));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
    }
}

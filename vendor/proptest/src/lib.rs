//! Local stand-in for `proptest` (the build environment resolves no
//! registry crates).
//!
//! Reimplements the subset of the proptest API this workspace uses:
//! the [`proptest!`] macro (with `#![proptest_config(...)]`), range and
//! collection strategies, [`Strategy::prop_map`], [`prop_oneof!`],
//! [`strategy::Just`], and the `prop_assert*` macros.
//!
//! Differences from upstream, by design of a test stand-in:
//!
//! * **no shrinking** — a failing case reports its inputs via the
//!   panic message of the underlying `assert!`;
//! * **deterministic seeding** — cases derive from a fixed seed (or
//!   `PROPTEST_SEED`), so failures reproduce exactly;
//! * default case count is 64 (`PROPTEST_CASES` overrides;
//!   `ProptestConfig::with_cases` takes precedence).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! Test-runner configuration and the RNG driving generation.

    /// Error a property-test body may return.
    ///
    /// Never constructed by this stand-in itself; it exists so that
    /// `return Ok(())` and `?` inside [`crate::proptest!`] bodies
    /// type-check against a concrete error type, as upstream proptest
    /// bodies do.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "test case error: {}", self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Configuration for a [`crate::proptest!`] block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// The deterministic RNG driving strategy generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from an explicit seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Creates the RNG for one test: a fixed base seed (or
        /// `PROPTEST_SEED`) mixed with the test name, so different
        /// properties explore different streams but each reproduces.
        pub fn for_test(name: &str) -> Self {
            let base = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0x9E37_79B9_7F4A_7C15u64);
            let mut h = base;
            for b in name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A float uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A bias-free integer uniform in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            let zone = u64::MAX - u64::MAX % span;
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % span;
                }
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of an output type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Discards generated values failing `pred` (regenerates, up to
        /// an attempt cap).
        fn prop_filter<F>(self, _whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, pred }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy behind [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// The strategy behind [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive candidates");
        }
    }

    /// Uniform choice among boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} options)", self.options.len())
        }
    }

    impl<T> Union<T> {
        /// Builds a union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size specification: fixed, or a range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for a `Vec` whose elements are drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`VecStrategy`] over `element` with the given size.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.min == self.size.max {
                self.size.min
            } else {
                self.size.min + rng.below((self.size.max - self.size.min) as u64 + 1) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The commonly used names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { ::std::assert!($($arg)*) };
}

/// Rejects the current case when the assumption does not hold.
///
/// In this stand-in the case is simply skipped (no rejection-rate
/// accounting): the body closure generated by [`proptest!`] returns
/// early with `Ok(())`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)? $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Asserts equality for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { ::std::assert_eq!($($arg)*) };
}

/// Asserts inequality for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { ::std::assert_ne!($($arg)*) };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(::std::boxed::Box::new($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` runs
/// its body over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($config) $($rest)*);
    };
    (@with ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng =
                $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $arg = ($strategy).generate(&mut rng);)+
                // The body runs in a closure returning `Result` so that
                // `return Ok(())` early exits and `prop_assume!` can
                // reject a case, mirroring upstream proptest bodies.
                #[allow(clippy::redundant_closure_call)]
                let _outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u32>> {
        prop::collection::vec(0u32..10, 1..5)
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in -2.0f64..2.0, z in 1u64..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn vec_strategy_respects_size(v in small_vec()) {
            prop_assert!((1..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn prop_map_applies(s in (0u32..5).prop_map(|v| v * 2)) {
            prop_assert!(s % 2 == 0);
            prop_assert!(s < 10);
        }

        #[test]
        fn oneof_picks_from_options(c in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&c));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        #[test]
        fn config_is_honoured(_x in 0u8..255) {
            // Runs; the case count is applied by the macro.
        }
    }

    #[test]
    fn rng_is_deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_test("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}

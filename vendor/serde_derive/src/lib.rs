//! Local stand-in for `serde_derive`, built on the raw `proc_macro`
//! API only (`syn`/`quote` are registry crates and the build
//! environment resolves none).
//!
//! Supported input shapes — exactly what this workspace uses:
//!
//! * structs with named fields, honouring the field attributes
//!   `#[serde(skip)]` (never serialized, `Default`-filled on
//!   deserialization) and `#[serde(default)]` (`Default`-filled when
//!   the field is missing);
//! * `#[serde(transparent)]` single-field tuple structs (newtypes);
//! * enums whose variants are all unit variants (serialized as the
//!   variant-name string).
//!
//! Anything else (generics, data-carrying enums, tuple structs without
//! `transparent`) produces a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the workspace `serde` stand-in's `Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives the workspace `serde` stand-in's `Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_input(input) {
        Ok(item) => {
            let src = match (&item.shape, mode) {
                (Shape::NamedStruct(fields), Mode::Serialize) => {
                    named_struct_serialize(&item, fields)
                }
                (Shape::NamedStruct(fields), Mode::Deserialize) => {
                    named_struct_deserialize(&item, fields)
                }
                (Shape::TransparentNewtype, Mode::Serialize) => transparent_serialize(&item),
                (Shape::TransparentNewtype, Mode::Deserialize) => transparent_deserialize(&item),
                (Shape::UnitEnum(variants), Mode::Serialize) => {
                    unit_enum_serialize(&item, variants)
                }
                (Shape::UnitEnum(variants), Mode::Deserialize) => {
                    unit_enum_deserialize(&item, variants)
                }
            };
            src.parse().expect("derive stand-in generated invalid Rust")
        }
        Err(msg) => format!("::core::compile_error!({msg:?});")
            .parse()
            .expect("compile_error tokens parse"),
    }
}

struct Field {
    name: String,
    skip: bool,
    default: bool,
}

enum Shape {
    NamedStruct(Vec<Field>),
    /// `#[serde(transparent)]` single-field tuple struct.
    TransparentNewtype,
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Scans one attribute group (`#[...]`'s bracketed tokens) for
/// `serde(...)` arguments, appending any found to `out`.
fn collect_serde_args(group: &proc_macro::Group, out: &mut Vec<String>) {
    let mut tokens = group.stream().into_iter();
    if let Some(TokenTree::Ident(name)) = tokens.next() {
        if name.to_string() == "serde" {
            if let Some(TokenTree::Group(args)) = tokens.next() {
                for tt in args.stream() {
                    if let TokenTree::Ident(arg) = tt {
                        out.push(arg.to_string());
                    }
                }
            }
        }
    }
}

/// Parses attributes at the cursor, returning collected serde arguments
/// and advancing past every `#[...]`.
fn take_attrs(tokens: &[TokenTree], mut i: usize) -> (Vec<String>, usize) {
    let mut serde_args = Vec::new();
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                collect_serde_args(g, &mut serde_args);
                i += 2;
            }
            _ => break,
        }
    }
    (serde_args, i)
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, ...) if present.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_input(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (type_args, mut i) = take_attrs(&tokens, 0);
    let transparent = type_args.iter().any(|a| a == "transparent");
    i = skip_vis(&tokens, i);

    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde derive stand-in: generic type `{name}` is not supported"
            ));
        }
    }

    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok(Item {
                    name,
                    shape: Shape::NamedStruct(fields),
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                if transparent {
                    Ok(Item {
                        name,
                        shape: Shape::TransparentNewtype,
                    })
                } else {
                    Err(format!(
                        "serde derive stand-in: tuple struct `{name}` requires #[serde(transparent)]"
                    ))
                }
            }
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_unit_variants(g.stream(), &name)?;
                Ok(Item {
                    name,
                    shape: Shape::UnitEnum(variants),
                })
            }
            other => Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        other => Err(format!(
            "serde derive stand-in supports structs and enums, found `{other}`"
        )),
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (serde_args, next) = take_attrs(&tokens, i);
        i = skip_vis(&tokens, next);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth: i64 = 0;
        while let Some(tt) = tokens.get(i) {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(Field {
            name,
            skip: serde_args.iter().any(|a| a == "skip"),
            default: serde_args.iter().any(|a| a == "default"),
        });
    }
    Ok(fields)
}

fn parse_unit_variants(stream: TokenStream, enum_name: &str) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (_, next) = take_attrs(&tokens, i);
        i = next;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde derive stand-in: enum `{enum_name}` has data-carrying variant \
                     `{name}`; only unit variants are supported"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "serde derive stand-in: enum `{enum_name}` has an explicit discriminant \
                     on `{name}`; not supported"
                ));
            }
            other => {
                return Err(format!(
                    "unexpected token after variant `{name}`: {other:?}"
                ))
            }
        }
        variants.push(name);
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation (source text, then re-parsed into tokens)
// ---------------------------------------------------------------------

fn named_struct_serialize(item: &Item, fields: &[Field]) -> String {
    let mut pushes = String::new();
    for f in fields.iter().filter(|f| !f.skip) {
        pushes.push_str(&format!(
            "fields.push(({n:?}.to_string(), ::serde::Serialize::to_value(&self.{n})));\n",
            n = f.name
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n\
         {pushes}\
         ::serde::Value::Object(fields)\n\
         }}\n}}\n",
        name = item.name
    )
}

fn named_struct_deserialize(item: &Item, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            inits.push_str(&format!(
                "{n}: ::std::default::Default::default(),\n",
                n = f.name
            ));
        } else if f.default {
            inits.push_str(&format!(
                "{n}: match value.get({n:?}) {{\n\
                 Some(v) => ::serde::Deserialize::from_value(v)?,\n\
                 None => ::std::default::Default::default(),\n\
                 }},\n",
                n = f.name
            ));
        } else {
            inits.push_str(&format!(
                "{n}: ::serde::Deserialize::from_value(value.get({n:?}).ok_or_else(|| \
                 ::serde::DeError::missing_field({n:?}, {t:?}))?)?,\n",
                n = f.name,
                t = item.name
            ));
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         if value.as_object().is_none() {{\n\
         return ::std::result::Result::Err(::serde::DeError::expected(\"object\", {name:?}));\n\
         }}\n\
         ::std::result::Result::Ok({name} {{\n\
         {inits}\
         }})\n\
         }}\n}}\n",
        name = item.name
    )
}

fn transparent_serialize(item: &Item) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         ::serde::Serialize::to_value(&self.0)\n\
         }}\n}}\n",
        name = item.name
    )
}

fn transparent_deserialize(item: &Item) -> String {
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))\n\
         }}\n}}\n",
        name = item.name
    )
}

fn unit_enum_serialize(item: &Item, variants: &[String]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| format!("{name}::{v} => {v:?},\n", name = item.name))
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         ::serde::Value::Str(match self {{\n{arms}}}.to_string())\n\
         }}\n}}\n",
        name = item.name
    )
}

fn unit_enum_deserialize(item: &Item, variants: &[String]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| {
            format!(
                "{v:?} => ::std::result::Result::Ok({name}::{v}),\n",
                name = item.name
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         match value.as_str() {{\n\
         Some(s) => match s {{\n\
         {arms}\
         other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\n\
         \"unknown variant `{{other}}` for {name}\"))),\n\
         }},\n\
         None => ::std::result::Result::Err(::serde::DeError::expected(\"string\", {name:?})),\n\
         }}\n\
         }}\n}}\n",
        name = item.name
    )
}

//! Local stand-in for `serde_json` (the build environment resolves no
//! registry crates): JSON emission and parsing over the workspace
//! `serde` stand-in's [`Value`] tree.
//!
//! Supports [`to_string`], [`to_string_pretty`] (2-space indent, like
//! upstream) and [`from_str`]. Object key order is preserved exactly as
//! produced by `Serialize`, so derived structs emit fields in
//! declaration order — deterministically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// A JSON serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// A `Result` alias matching upstream serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// This stand-in's value-tree serialization is infallible; the
/// `Result` return matches upstream's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Infallible in this stand-in; see [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_complete(s)?;
    Ok(T::from_value(&value)?)
}

/// Parses JSON text into a raw [`Value`].
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON.
pub fn from_str_value(s: &str) -> Result<Value> {
    parse_value_complete(s)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..depth * step {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // Upstream serde_json writes non-finite floats as null.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep float-ness visible, as upstream does (1.0, not 1).
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair: require \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // parse_hex4 advanced past the digits
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape {:?}",
                                other.map(|b| b as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is &str, so
                    // the bytes are valid UTF-8 by construction).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for json in ["null", "true", "false", "42", "-7", "1.5", "\"hi\""] {
            let v = from_str_value(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json);
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let json = r#"{"a":[1,2,{"b":"x"}],"c":null,"d":{"e":0.5}}"#;
        let v = from_str_value(json).unwrap();
        assert_eq!(to_string(&v).unwrap(), json);
    }

    #[test]
    fn pretty_printing_indents_two_spaces() {
        let v = from_str_value(r#"{"a":[1],"b":{}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1\n  ],\n  \"b\": {}\n}");
    }

    #[test]
    fn float_formatting_keeps_floatness() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.005f64).unwrap(), "0.005");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nquote\"backslash\\tab\tμ".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: String = from_str("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, "é\u{1F600}");
        let literal: String = from_str("\"é\u{1F600}\"").unwrap();
        assert_eq!(literal, "é\u{1F600}");
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str_value("{").is_err());
        assert!(from_str_value("[1,]").is_err());
        assert!(from_str_value("12 34").is_err());
        assert!(from_str_value("\"unterminated").is_err());
    }

    #[test]
    fn key_order_is_preserved() {
        let json = r#"{"z":1,"a":2,"m":3}"#;
        assert_eq!(to_string(&from_str_value(json).unwrap()).unwrap(), json);
    }
}

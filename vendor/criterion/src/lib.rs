//! Local stand-in for `criterion` (the build environment resolves no
//! registry crates).
//!
//! Provides the subset of the criterion 0.5 API the workspace's
//! benches use — [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — measured with
//! plain `std::time::Instant` wall clocks.
//!
//! Statistical rigour is intentionally out of scope: each benchmark
//! runs `CRITERION_STUB_ITERS` timed iterations (default 3, after one
//! warm-up) and reports the mean, which is enough to compare hot paths
//! locally in this offline environment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn stub_iters() -> u32 {
    std::env::var("CRITERION_STUB_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// Batch sizing hints for [`Bencher::iter_batched`] (advisory only in
/// this stand-in).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup output per batch of iterations.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter rendering.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// Converts into the canonical id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Runs and times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: u32,
    /// Mean nanoseconds per iteration, recorded by `iter*`.
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, running one warm-up plus the configured
    /// iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / f64::from(self.iters.max(1));
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total_ns = 0u128;
        black_box(routine(setup())); // warm-up
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total_ns += start.elapsed().as_nanos();
        }
        self.mean_ns = total_ns as f64 / f64::from(self.iters.max(1));
    }
}

fn report(group: Option<&str>, id: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let mut line = String::new();
    let _ = match group {
        Some(g) => write!(line, "bench {g}/{id}: {:.0} ns/iter", mean_ns),
        None => write!(line, "bench {id}: {:.0} ns/iter", mean_ns),
    };
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if mean_ns > 0.0 {
            let per_sec = count as f64 * 1e9 / mean_ns;
            let _ = write!(line, " ({per_sec:.0} {unit}/s)");
        }
    }
    eprintln!("{line}");
}

/// A group of related benchmarks sharing throughput and sampling
/// configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (advisory in this stand-in).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<ID: IntoBenchmarkId, F>(&mut self, id: ID, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: stub_iters(),
            mean_ns: 0.0,
        };
        f(&mut b);
        report(Some(&self.name), &id.into_id(), b.mean_ns, self.throughput);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<ID: IntoBenchmarkId, I: ?Sized, F>(
        &mut self,
        id: ID,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: stub_iters(),
            mean_ns: 0.0,
        };
        f(&mut b, input);
        report(Some(&self.name), &id.into_id(), b.mean_ns, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (no-op in this stand-in; it
    /// accepts and ignores harness arguments such as `--bench`).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<ID: IntoBenchmarkId, F>(&mut self, id: ID, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: stub_iters(),
            mean_ns: 0.0,
        };
        f(&mut b);
        report(None, &id.into_id(), b.mean_ns, None);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default().configure_from_args();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::new("sum", 3), &3u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function(BenchmarkId::from_parameter("batched"), |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
    }
}

//! Local stand-in for `serde` (the build environment resolves no
//! registry crates).
//!
//! Instead of serde's visitor architecture, this stand-in serializes
//! through an intermediate [`Value`] tree: [`Serialize`] converts a type
//! into a `Value`, [`Deserialize`] reconstructs it from one. Object
//! fields preserve **insertion order**, so derived structs serialize
//! their fields in declaration order — deterministically.
//!
//! The `derive` feature re-exports `#[derive(Serialize, Deserialize)]`
//! from the companion `serde_derive` stand-in, which supports the
//! shapes this workspace uses: named-field structs (with
//! `#[serde(skip)]` / `#[serde(default)]` field attributes), unit-only
//! enums, and `#[serde(transparent)]` newtype structs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (used when the value exceeds `i64::MAX`).
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; pairs preserve insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array elements, if this value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|pairs| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization failure: what was expected, what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Builds an error from a free-form message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// Builds an "expected X while deserializing Y" error.
    pub fn expected(what: &str, context: &str) -> Self {
        DeError {
            message: format!("expected {what} while deserializing {context}"),
        }
    }

    /// Builds a "missing field" error.
    pub fn missing_field(field: &str, context: &str) -> Self {
        DeError {
            message: format!("missing field `{field}` while deserializing {context}"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// A type convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a serialized value.
    fn to_value(&self) -> Value;
}

/// A type reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a serialized value.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape does not match.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::new(format!("integer {i} out of range"))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::new(format!("integer {u} out of range"))),
                    other => Err(DeError::expected("integer", other.kind())),
                }
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as u64;
                if v <= i64::MAX as u64 {
                    Value::Int(v as i64)
                } else {
                    Value::UInt(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Int(i) => u64::try_from(*i)
                        .ok()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| DeError::new(format!("integer {i} out of range"))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::new(format!("integer {u} out of range"))),
                    other => Err(DeError::expected("integer", other.kind())),
                }
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            Value::Null => Ok(f64::NAN), // serde_json writes non-finite floats as null
            other => Err(DeError::expected("number", other.kind())),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other.kind())),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other.kind())),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-character string", "char")),
        }
    }
}

// ---------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

/// Map keys must render as strings in the JSON data model.
pub trait SerializeKey {
    /// The string form of this key.
    fn to_key(&self) -> String;
}

/// Map keys must be reconstructible from their string form.
pub trait DeserializeKey: Sized {
    /// Parses a key from its string form.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the string is not a valid key.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl SerializeKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
}

impl DeserializeKey for String {
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl SerializeKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
        }
        impl DeserializeKey for $t {
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse()
                    .map_err(|_| DeError::new(format!("invalid integer key `{key}`")))
            }
        }
    )*};
}

impl_int_key!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<K: SerializeKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: DeserializeKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other.kind())),
        }
    }
}

impl<K: SerializeKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort for determinism: hash iteration order is unspecified.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: DeserializeKey + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other.kind())),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = value
                    .as_array()
                    .ok_or_else(|| DeError::expected("array", value.kind()))?;
                if items.len() != LEN {
                    return Err(DeError::new(format!(
                        "expected array of length {LEN}, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(()),
            other => Err(DeError::expected("null", other.kind())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1usize, "a".to_string()), (2, "b".to_string())];
        let back: Vec<(usize, String)> = Vec::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);

        let mut m = BTreeMap::new();
        m.insert("x".to_string(), 9u64);
        let back: BTreeMap<String, u64> = BTreeMap::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);

        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
        assert_eq!(
            Option::<u8>::from_value(&Some(3u8).to_value()).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn object_fields_preserve_insertion_order() {
        let v = Value::Object(vec![
            ("z".into(), Value::Int(1)),
            ("a".into(), Value::Int(2)),
        ]);
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a"]);
    }

    #[test]
    fn type_mismatches_error() {
        assert!(u32::from_value(&Value::Str("no".into())).is_err());
        assert!(bool::from_value(&Value::Int(1)).is_err());
        assert!(Vec::<u8>::from_value(&Value::Null).is_err());
    }
}
